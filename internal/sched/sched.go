// Package sched provides the concurrency primitives the pipelined K-FAC
// step engine is built from, kept generic so any layer of the codebase can
// use them: a bounded worker Pool for CPU-bound tasks, an error-collecting
// Group for wait-bound goroutines (communication waiters, stage issuers),
// and a dependency-driven task Graph.
//
// The split matters for deadlock freedom: Pool workers must never block on
// other tasks (they run leaf compute), while Group goroutines are unbounded
// and may block on channels, collective handles, or Task completion. The
// Graph schedules a task onto its Pool only once every dependency has
// finished, so no worker slot is ever held by a task that is waiting.
package sched

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool for CPU-bound tasks. Submitted functions are
// executed by at most `workers` goroutines; Submit never blocks the caller.
type Pool struct {
	tasks chan func()
	rjobs chan rangeJob
	wg    sync.WaitGroup // tracks in-flight + queued tasks

	mu      sync.Mutex
	closed  bool
	workers int
}

// NewPool creates a pool with the given concurrency; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		// Buffer a healthy queue so producers rarely need the overflow path.
		tasks:   make(chan func(), 4*workers),
		rjobs:   make(chan rangeJob, 4*workers),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case fn, ok := <-p.tasks:
			if !ok {
				return
			}
			fn()
			p.wg.Done()
		case rj := <-p.rjobs:
			rj.r.RunRange(rj.lo, rj.hi)
			rj.done.Done()
			p.wg.Done()
		}
	}
}

// Ranger is a leaf compute kernel over a half-open row range. Implementations
// are typically small reusable structs (drawn from a sync.Pool by the caller)
// carrying the kernel's operands, so a ForEach dispatch allocates nothing.
type Ranger interface {
	RunRange(lo, hi int)
}

// rangeJob is one ForEach chunk. It travels by value through a buffered
// channel, so dispatching a chunk performs no heap allocation.
type rangeJob struct {
	r      Ranger
	lo, hi int
	done   *sync.WaitGroup
}

// ForEach splits [0, m) into up to nchunks contiguous ranges, runs them on
// the pool's workers, and blocks until all complete. done is caller-provided
// scratch (usually embedded in the Ranger) and must have a zero count on
// entry. When the job queue is full the caller runs the chunk inline, so
// ForEach never spawns goroutines and never allocates — the property the
// zero-allocation tensor kernels rely on.
//
// Like all pool tasks, ranges must be pure leaf compute: a RunRange that
// itself called ForEach on the same pool could leave every worker blocked
// waiting for chunks nobody can run.
func (p *Pool) ForEach(m, nchunks int, r Ranger, done *sync.WaitGroup) {
	if m <= 0 {
		return
	}
	if nchunks > m {
		nchunks = m
	}
	if nchunks <= 1 {
		r.RunRange(0, m)
		return
	}
	chunk := (m + nchunks - 1) / nchunks
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		done.Add(1)
		p.wg.Add(1)
		select {
		case p.rjobs <- rangeJob{r: r, lo: lo, hi: hi, done: done}:
		default:
			// Queue full: run inline rather than block or spawn.
			r.RunRange(lo, hi)
			done.Done()
			p.wg.Done()
		}
	}
	done.Wait()
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues fn for execution. It never blocks: when the queue is full
// the task is handed to a transient goroutine that feeds it into the queue,
// preserving the concurrency bound while keeping producers (e.g. collective
// issuers that must maintain SPMD ordering) free-running. Submitting to a
// closed pool panics, as sending on a closed channel would.
func (p *Pool) Submit(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit on closed Pool")
	}
	p.wg.Add(1)
	select {
	case p.tasks <- fn:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		go func() { p.tasks <- fn }()
	}
}

// Wait blocks until every task submitted so far has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and stops the workers. The pool cannot
// be reused afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
	close(p.tasks)
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide compute pool used by the blocked
// linear-algebra kernels in internal/tensor and internal/linalg. It is
// created on first use with GOMAXPROCS workers and is never closed.
//
// Tasks submitted to the shared pool must be pure leaf compute: they must
// not themselves submit to (and wait on) the shared pool, or a full queue
// could leave every worker blocked waiting for subtasks that can no longer
// be scheduled. Blocking work belongs on a Group or a dedicated Pool.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}

// Group runs goroutines that may block (on channels, network handles, or
// Task completion) and collects the first error — errgroup with no external
// dependency. The zero value is ready to use.
type Group struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// Go runs fn on its own goroutine.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Err returns the first recorded error without waiting.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Wait blocks until every goroutine started with Go has returned, then
// reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.Err()
}

// Task is one node of a Graph: a function plus its dependencies. A task runs
// on the graph's Pool once all dependencies have completed successfully; if
// any dependency failed (or was itself skipped), the task is skipped and
// inherits the error.
type Task struct {
	fn   func() error
	done chan struct{}
	err  error

	mu      sync.Mutex
	pending int
	succs   []*Task
	g       *Graph
}

// Err returns the task's error (nil until done; call Wait first to
// synchronize).
func (t *Task) Err() error { return t.err }

// Wait blocks until the task has run (or been skipped) and returns its
// error.
func (t *Task) Wait() error {
	<-t.done
	return t.err
}

// Done returns a channel closed when the task completes; useful in select
// loops.
func (t *Task) Done() <-chan struct{} { return t.done }

// Graph schedules dependent tasks over a Pool. Tasks may be added
// dynamically — including from inside running tasks — until Wait is called.
// Dependency cycles are impossible by construction: a task can only depend
// on tasks that already exist.
type Graph struct {
	pool *Pool
	wg   sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGraph creates a task graph over pool.
func NewGraph(pool *Pool) *Graph { return &Graph{pool: pool} }

// Add registers fn with the given dependencies and returns its Task. The
// task is submitted to the pool as soon as every dependency has finished.
func (g *Graph) Add(fn func() error, deps ...*Task) *Task {
	t := &Task{fn: fn, done: make(chan struct{}), g: g}
	g.wg.Add(1)
	t.mu.Lock()
	for _, d := range deps {
		d.mu.Lock()
		select {
		case <-d.done:
			d.mu.Unlock()
			if d.err != nil && t.err == nil {
				t.err = fmt.Errorf("sched: dependency failed: %w", d.err)
			}
		default:
			t.pending++
			d.succs = append(d.succs, t)
			d.mu.Unlock()
		}
	}
	ready := t.pending == 0
	t.mu.Unlock()
	if ready {
		g.dispatch(t)
	}
	return t
}

// dispatch submits a ready task (or completes it immediately when a
// dependency already failed).
func (g *Graph) dispatch(t *Task) {
	if t.err != nil {
		t.finish()
		return
	}
	g.pool.Submit(func() {
		t.err = t.fn()
		t.finish()
	})
}

// finish marks t complete, records the graph error, and releases
// successors.
func (t *Task) finish() {
	close(t.done)
	if t.err != nil {
		t.g.mu.Lock()
		if t.g.err == nil {
			t.g.err = t.err
		}
		t.g.mu.Unlock()
	}
	t.mu.Lock()
	succs := t.succs
	t.succs = nil
	t.mu.Unlock()
	for _, s := range succs {
		s.mu.Lock()
		if t.err != nil && s.err == nil {
			s.err = fmt.Errorf("sched: dependency failed: %w", t.err)
		}
		s.pending--
		ready := s.pending == 0
		s.mu.Unlock()
		if ready {
			t.g.dispatch(s)
		}
	}
	t.g.wg.Done()
}

// Wait blocks until every task added so far has completed and returns the
// first error recorded in the graph.
func (g *Graph) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
