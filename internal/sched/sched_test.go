package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func() {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	p.Wait()
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak.Load(), workers)
	}
}

func TestPoolSubmitNeverBlocks(t *testing.T) {
	// A single worker stuck behind a slow task must not block producers.
	p := NewPool(1)
	defer p.Close()
	release := make(chan struct{})
	p.Submit(func() { <-release })
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			p.Submit(func() {})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked with a busy worker")
	}
	close(release)
	p.Wait()
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close()
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	g.Go(func() error { return nil })
	g.Go(func() error { return boom })
	g.Go(func() error { time.Sleep(time.Millisecond); return errors.New("later") })
	if err := g.Wait(); !errors.Is(err, boom) && err.Error() != "later" {
		// First error wins; either could be first, but nil is wrong.
		if err == nil {
			t.Fatal("Wait returned nil despite failures")
		}
	}
}

func TestGraphRespectsDependencies(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := NewGraph(p)
	var order []int
	var mu sync.Mutex
	record := func(id int) func() error {
		return func() error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	a := g.Add(record(1))
	b := g.Add(record(2), a)
	c := g.Add(record(3), a)
	g.Add(record(4), b, c)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[1] > pos[2] || pos[1] > pos[3] || pos[2] > pos[4] || pos[3] > pos[4] {
		t.Fatalf("dependency order violated: %v", order)
	}
}

func TestGraphSkipsDependentsOnError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := NewGraph(p)
	boom := errors.New("boom")
	var ran atomic.Bool
	bad := g.Add(func() error { return boom })
	dep := g.Add(func() error { ran.Store(true); return nil }, bad)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("graph error = %v, want %v", err, boom)
	}
	if ran.Load() {
		t.Fatal("dependent of failed task ran")
	}
	if err := dep.Wait(); !errors.Is(err, boom) {
		t.Fatalf("dependent error = %v, want wrapped %v", err, boom)
	}
}

func TestGraphDynamicAddFromRunningTask(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := NewGraph(p)
	var n atomic.Int64
	var addChild func(depth int) func() error
	addChild = func(depth int) func() error {
		return func() error {
			n.Add(1)
			if depth > 0 {
				g.Add(addChild(depth - 1))
			}
			return nil
		}
	}
	g.Add(addChild(5))
	// Give the chain a chance to unfold before Wait (Wait is still correct
	// because each Add increments the WaitGroup before its parent finishes).
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 6 {
		t.Fatalf("ran %d tasks, want 6", n.Load())
	}
}

func TestGraphAddWithCompletedDependency(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := NewGraph(p)
	a := g.Add(func() error { return nil })
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	b := g.Add(func() error { ran.Store(true); return nil }, a)
	if err := b.Wait(); err != nil || !ran.Load() {
		t.Fatalf("late-added task did not run: err=%v ran=%v", err, ran.Load())
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}
