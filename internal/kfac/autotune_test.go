package kfac

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
	"repro/internal/testenv"
)

// tuneTrace runs a p-rank chaos world with the given options for `steps`
// optimizer steps and returns each rank's recorded autotune decision
// sequence plus its final combined gradients.
func tuneTrace(t *testing.T, p int, chaos comm.ChaosConfig, opts Options, steps int) ([][]TuneDecision, [][]*tensor.Tensor) {
	t.Helper()
	decs := make([][]TuneDecision, p)
	grads := make([][]*tensor.Tensor, p)
	if p == 1 {
		decs[0], grads[0] = tuneRank(t, nil, opts, steps)
		return decs, grads
	}
	fab := comm.NewChaosFabric(comm.NewInprocFabric(p), p, chaos)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			decs[r], grads[r] = tuneRank(t, comm.NewCommunicator(fab.Endpoint(r)), opts, steps)
		}(r)
	}
	wg.Wait()
	return decs, grads
}

func tuneRank(t *testing.T, c *comm.Communicator, opts Options, steps int) ([]TuneDecision, []*tensor.Tensor) {
	t.Helper()
	net := buildTinyNet(42)
	prec := NewFromOptions(net, c, opts)
	defer prec.Close()
	for i := 0; i < steps; i++ {
		runStep(net, int64(1000+i), 4)
		if err := prec.Step(0.1); err != nil {
			t.Errorf("step %d: %v", i, err)
			return nil, nil
		}
	}
	var out []*tensor.Tensor
	for _, s := range prec.states {
		out = append(out, s.layer.CombinedGrad().Clone())
	}
	return prec.Stats().Snapshot().TuneDecisions, out
}

// sameDecisions compares two decision sequences with bit-exact float
// comparison — the consensus contract is bitwise, not approximate.
func sameDecisions(a, b []TuneDecision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].BandwidthBps) != math.Float64bits(b[i].BandwidthBps) ||
			math.Float64bits(a[i].DropRate) != math.Float64bits(b[i].DropRate) {
			return false
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestAutotuneDecisionsDeterministicProperty is the determinism acceptance
// property: under randomized chaos schedules (latency jitter, droppy
// links), every rank of every world size 1–8, on either engine, must record
// the exact same autotune decision sequence — bit-identical consensus
// floats, same levels, same step boundaries — and the ranks' gradients must
// stay bit-identical to each other even as decisions switch codecs mid-run.
// World 1 (and nil-comm) runs assert the controller stays silent: there is
// no consensus partner, so the static configuration must never change.
func TestAutotuneDecisionsDeterministicProperty(t *testing.T) {
	steps := testenv.Scale(6, 4)
	prop := func(seed uint16, worldSel uint8, pipelined, droppy bool) bool {
		p := 1 + int(worldSel)%8
		chaos := comm.ChaosConfig{
			Seed:       int64(seed) + 1,
			MinLatency: 2 * time.Microsecond,
			MaxLatency: 150 * time.Microsecond,
		}
		if droppy {
			chaos.DropRate = 0.05
			chaos.MaxRetries = 50
		}
		opts := Options{FactorUpdateFreq: 1, InvUpdateFreq: 2, Autotune: &AutotuneConfig{}}
		if pipelined {
			opts.Engine = EnginePipelined
		}
		decs, grads := tuneTrace(t, p, chaos, opts, steps)
		if t.Failed() {
			return false
		}
		if p == 1 {
			return len(decs[0]) == 0
		}
		// One decision per factor update after the first, on every rank.
		if len(decs[0]) != steps-1 {
			t.Logf("world %d: %d decisions, want %d", p, len(decs[0]), steps-1)
			return false
		}
		for r := 1; r < p; r++ {
			if !sameDecisions(decs[0], decs[r]) {
				t.Logf("world %d seed %d: rank %d decisions diverge from rank 0:\n  r0: %+v\n  r%d: %+v",
					p, seed, r, decs[0], r, decs[r])
				return false
			}
			for i := range grads[0] {
				if !grads[0][i].Equal(grads[r][i], 0) {
					t.Logf("world %d seed %d: rank %d layer %d gradients diverge", p, seed, r, i)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: testenv.Scale(10, 4)}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAutotuneBandwidthCapForcesCompression: squeezing the chaos link to
// ~1 MB/s must drive the consensus bandwidth estimate below the float16
// band edge and land the controller on a compressed level — the
// degradation response the policy table exists for. The decision must also
// be marked Changed exactly when the level moves.
func TestAutotuneBandwidthCapForcesCompression(t *testing.T) {
	const p = 2
	const steps = 5
	chaos := comm.ChaosConfig{Seed: 7, BandwidthBps: 1 << 20}
	opts := Options{FactorUpdateFreq: 1, InvUpdateFreq: 2, Autotune: &AutotuneConfig{}}
	decs, _ := tuneTrace(t, p, chaos, opts, steps)
	if t.Failed() {
		t.FailNow()
	}
	if len(decs[0]) == 0 {
		t.Fatal("no autotune decisions recorded")
	}
	last := decs[0][len(decs[0])-1]
	if last.Codec == "" {
		t.Errorf("1 MB/s link: final decision stayed uncompressed: %+v", last)
	}
	if last.BandwidthBps >= 4<<20 {
		t.Errorf("bandwidth estimate %.0f B/s not pulled under the cap", last.BandwidthBps)
	}
	prev := -1
	for i, d := range decs[0] {
		if want := d.Level != prev; d.Changed != want {
			t.Errorf("decision %d: Changed=%v with level %d after %d", i, d.Changed, d.Level, prev)
		}
		prev = d.Level
	}
	if !sameDecisions(decs[0], decs[1]) {
		t.Error("ranks disagree on capped-link decisions")
	}
}

// TestAutotunePickBands pins the policy table's selection function: band
// edges are inclusive, the drop penalty pushes one level down but never
// past the last level.
func TestAutotunePickBands(t *testing.T) {
	tp := DefaultTunePolicy()
	cases := []struct {
		bw, drop float64
		want     int
	}{
		{256 << 20, 0, 0},
		{64 << 20, 0, 0}, // inclusive lower edge
		{63 << 20, 0, 1}, // just below
		{16 << 20, 0, 1},
		{8 << 20, 0, 2},
		{1 << 20, 0, 3},
		{0, 0, 3},
		{256 << 20, 0.5, 1}, // drop penalty demotes one level
		{1 << 20, 0.5, 3},   // but never past the catch-all
		{math.Inf(1), 0, 0}, // pre-first-measurement optimism
	}
	for _, c := range cases {
		if got := tp.Pick(c.bw, c.drop); got != c.want {
			t.Errorf("Pick(%g, %g) = %d, want %d", c.bw, c.drop, got, c.want)
		}
	}
}

// TestAutotuneRebindResets: an elastic resize rebuilds the consensus
// group, so surviving ranks must fall back to the static configuration
// (level −1) and drop accumulated residuals rather than carry decisions
// made with dead peers.
func TestAutotuneRebindResets(t *testing.T) {
	net := buildTinyNet(42)
	prec := NewFromOptions(net, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1,
		Autotune: &AutotuneConfig{}})
	defer prec.Close()
	prec.tuner.level = 2 // simulate an in-force decision
	if ts := prec.Tuning(); !ts.Tuned || ts.Codec == nil {
		t.Fatalf("expected tuned state before rebind, got %+v", ts)
	}
	prec.Rebind(nil)
	ts := prec.Tuning()
	if ts.Tuned || ts.Codec != nil {
		t.Fatalf("rebind did not reset the tuner: %+v", ts)
	}
}
