package kfac

import (
	"reflect"
	"testing"
	"testing/quick"
)

// stubPlanModel is a deterministic pure-function cost model for planner
// property tests: memory is the real plan's worst-rank decomposition
// footprint at 8 bytes/elem (exactly what simulate.PlanModel reports), cost
// is an arbitrary but stable arithmetic mix of the inputs so ordering is
// nontrivial across the grid.
type stubPlanModel struct{}

func (stubPlanModel) CandidateCost(strategy Strategy, refs []FactorRef, world int, cand PlanCandidate) (float64, int64) {
	plan := BuildPlan(strategy, cand.Mode, cand.GradWorkerFrac, refs, world)
	var maxMem int64
	for _, e := range plan.DecompElemsPerRank(refs) {
		if e*8 > maxMem {
			maxMem = e * 8
		}
	}
	cost := float64(maxMem)/1e6 + float64(cand.GroupSize)*0.01 +
		cand.GradWorkerFrac*float64(world)*0.001 + float64(int(cand.Mode))*0.1
	return cost, maxMem
}

var plannerWorlds = []int{1, 2, 3, 16, 64, 100, 256, 1024}

func TestResolveAutoPlanNeverExceedsBudget(t *testing.T) {
	// Property: whatever the budget, the decision's predicted memory fits it
	// — except when OverBudget reports that no candidate could.
	f := func(layerSeed int64, worldIdx uint8, budgetMB uint16) bool {
		refs := planRefs(3+int(layerSeed%8+8)%8, layerSeed)
		world := plannerWorlds[int(worldIdx)%len(plannerWorlds)]
		cfg := AutoPlannerConfig{
			Model:             stubPlanModel{},
			MemoryBudgetBytes: int64(budgetMB) * 1 << 20,
		}
		d := ResolveAutoPlan(cfg, RoundRobin, refs, world)
		if d.OverBudget {
			// Degraded decision must be the minimum-memory candidate.
			for _, cand := range PlanCandidates(cfg) {
				_, mem := cfg.Model.CandidateCost(RoundRobin, refs, world, cand)
				if mem < d.PredictedMemBytes {
					return false
				}
			}
			return d.Rejected == d.Candidates
		}
		return cfg.MemoryBudgetBytes == 0 || d.PredictedMemBytes <= cfg.MemoryBudgetBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestResolveAutoPlanMatchesBruteForce(t *testing.T) {
	// Property: the decision is exactly the brute-force argmin over the
	// candidate grid restricted to the budget, first grid position winning
	// ties.
	f := func(layerSeed int64, worldIdx uint8, budgetMB uint16) bool {
		refs := planRefs(2+int(layerSeed%6+6)%6, layerSeed)
		world := plannerWorlds[int(worldIdx)%len(plannerWorlds)]
		cfg := AutoPlannerConfig{
			Model:             stubPlanModel{},
			MemoryBudgetBytes: int64(budgetMB) * 1 << 19,
		}
		d := ResolveAutoPlan(cfg, SizeGreedy, refs, world)
		var (
			found bool
			best  PlanCandidate
			bestC float64
		)
		for _, cand := range PlanCandidates(cfg) {
			cost, mem := cfg.Model.CandidateCost(SizeGreedy, refs, world, cand)
			if cfg.MemoryBudgetBytes > 0 && mem > cfg.MemoryBudgetBytes {
				continue
			}
			if !found || cost < bestC {
				found, best, bestC = true, cand, cost
			}
		}
		if !found {
			return d.OverBudget
		}
		return !d.OverBudget && d.PlanCandidate == best && d.PredictedStepSec == bestC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestResolveAutoPlanDeterministicAcrossRanks(t *testing.T) {
	// SPMD contract: every rank resolves the identical decision from the
	// shared inputs, with no communication, at every world size up to 1024
	// — and repeated calls never drift.
	refs := planRefs(9, 17)
	cfg := AutoPlannerConfig{Model: stubPlanModel{}, MemoryBudgetBytes: 64 << 20}
	for _, world := range plannerWorlds {
		first := ResolveAutoPlan(cfg, RoundRobin, refs, world)
		// "Across ranks" is per-rank recomputation of the same pure function;
		// re-resolving models each rank's independent call.
		for rank := 0; rank < 5; rank++ {
			if again := ResolveAutoPlan(cfg, RoundRobin, refs, world); !reflect.DeepEqual(first, again) {
				t.Fatalf("world %d: decision differs across ranks: %+v vs %+v", world, first, again)
			}
		}
		// The plan the decision induces is itself deterministic.
		p1 := BuildPlan(RoundRobin, first.Mode, first.GradWorkerFrac, refs, world)
		p2 := BuildPlan(RoundRobin, first.Mode, first.GradWorkerFrac, refs, world)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("world %d: induced plan not deterministic", world)
		}
	}
}

func TestResolveAutoPlanLegacyFallback(t *testing.T) {
	// Without a model the planner IS the legacy two-case rule, and the plans
	// it induces are bit-identical to resolving DistAuto directly.
	refs := planRefs(6, 5)
	for _, strategy := range []Strategy{RoundRobin, LayerWise, SizeGreedy} {
		for _, world := range []int{1, 4, 64, 1024} {
			d := ResolveAutoPlan(AutoPlannerConfig{}, strategy, refs, world)
			wantMode := ResolveDistMode(DistAuto, strategy)
			if d.Mode != wantMode || d.GradWorkerFrac != 0 || d.GroupSize != 0 {
				t.Fatalf("%v w=%d: fallback decision %+v, want mode %v", strategy, world, d, wantMode)
			}
			if d.Candidates != 0 || d.Rejected != 0 || d.OverBudget {
				t.Fatalf("%v w=%d: fallback should not enumerate: %+v", strategy, world, d)
			}
			legacy := BuildPlan(strategy, DistAuto, 0, refs, world)
			planned := BuildPlan(strategy, d.Mode, d.GradWorkerFrac, refs, world)
			if !reflect.DeepEqual(legacy, planned) {
				t.Fatalf("%v w=%d: fallback plan differs from legacy DistAuto", strategy, world)
			}
		}
	}
}

func TestPlanCandidatesGridOrder(t *testing.T) {
	cands := PlanCandidates(AutoPlannerConfig{})
	wantLen := len(DefaultGroupSizes) * (len(DefaultHybridFracs) + 2)
	if len(cands) != wantLen {
		t.Fatalf("default grid size %d, want %d", len(cands), wantLen)
	}
	// Fixed order per group size: CommOpt, Hybrid fracs ascending, MemOpt.
	i := 0
	for _, g := range DefaultGroupSizes {
		if cands[i] != (PlanCandidate{Mode: CommOpt, GroupSize: g}) {
			t.Fatalf("grid[%d] = %+v, want CommOpt g=%d", i, cands[i], g)
		}
		i++
		for _, f := range DefaultHybridFracs {
			if cands[i] != (PlanCandidate{Mode: Hybrid, GradWorkerFrac: f, GroupSize: g}) {
				t.Fatalf("grid[%d] = %+v, want Hybrid f=%v g=%d", i, cands[i], f, g)
			}
			i++
		}
		if cands[i] != (PlanCandidate{Mode: MemOpt, GroupSize: g}) {
			t.Fatalf("grid[%d] = %+v, want MemOpt g=%d", i, cands[i], g)
		}
		i++
	}
	// Custom axes are honored verbatim.
	custom := PlanCandidates(AutoPlannerConfig{HybridFracs: []float64{0.5}, GroupSizes: []int{0, 16}})
	if len(custom) != 6 {
		t.Fatalf("custom grid size %d, want 6", len(custom))
	}
	if custom[4] != (PlanCandidate{Mode: Hybrid, GradWorkerFrac: 0.5, GroupSize: 16}) {
		t.Fatalf("custom grid[4] = %+v", custom[4])
	}
}

func TestWithAutoPlannerWiresPreconditioner(t *testing.T) {
	// End-to-end through New: with a model, the decision is exposed and its
	// group size reaches effGroupSize; with a nil model (or no planner) the
	// decision stays nil and plans are bit-identical to legacy DistAuto.
	net := buildTinyNet(11)
	planned := New(net, nil, WithAutoPlanner(AutoPlannerConfig{
		Model:      stubPlanModel{},
		GroupSizes: []int{3}, // force a visible group-size pick
	}))
	defer planned.Close()
	d := planned.Decision()
	if d == nil {
		t.Fatal("Decision() nil with an active auto-planner")
	}
	if d.GroupSize != 3 {
		t.Fatalf("decision group size %d, want 3 (only grid value)", d.GroupSize)
	}
	if got := planned.effGroupSize(); got != 3 {
		t.Fatalf("effGroupSize = %d, want the planner's 3", got)
	}
	if planned.Plan() == nil {
		t.Fatal("no plan built")
	}

	// An explicit WithGroupSize outranks the planner's pick.
	net2 := buildTinyNet(11)
	pinned := New(net2, nil, WithGroupSize(2), WithAutoPlanner(AutoPlannerConfig{
		Model:      stubPlanModel{},
		GroupSizes: []int{3},
	}))
	defer pinned.Close()
	if got := pinned.effGroupSize(); got != 2 {
		t.Fatalf("explicit group size lost: effGroupSize = %d, want 2", got)
	}

	// Nil model: legacy path, bit-identical plan, no decision.
	net3 := buildTinyNet(11)
	legacy := New(net3, nil, WithAutoPlanner(AutoPlannerConfig{}))
	defer legacy.Close()
	if legacy.Decision() != nil {
		t.Fatal("Decision() non-nil without a model")
	}
	net4 := buildTinyNet(11)
	plain := New(net4, nil)
	defer plain.Close()
	if !reflect.DeepEqual(legacy.Plan(), plain.Plan()) {
		t.Fatal("nil-model planner plan differs from legacy DistAuto plan")
	}

	// An explicit DistMode bypasses the planner entirely.
	net5 := buildTinyNet(11)
	explicit := New(net5, nil, WithDistMode(MemOpt), WithAutoPlanner(AutoPlannerConfig{Model: stubPlanModel{}}))
	defer explicit.Close()
	if explicit.Decision() != nil {
		t.Fatal("planner consulted despite explicit DistMode")
	}
}
