package kfac

import (
	"sort"
	"sync"

	"repro/internal/linalg"
)

// EigSolver selects the symmetric eigensolver behind EigenMode
// decompositions.
type EigSolver int

const (
	// EigBlocked (the default) is the blocked multi-threaded solver
	// (linalg.SymEigBlockedInto): Level-3 Householder tridiagonalization
	// with compact-WY trailing updates, parallel Q back-accumulation, and
	// batched QL rotations, run with the per-factor worker team chosen by
	// the eig scheduler. Bitwise deterministic across team sizes and runs.
	EigBlocked EigSolver = iota
	// EigSerial is the original single-threaded tred2/tql2 pair
	// (linalg.SymEigInto), retained as the oracle — the escape hatch
	// analogous to the purego build tag for the SIMD kernels.
	EigSerial
)

// WithEigSolver selects the eigendecomposition implementation (default
// EigBlocked). EigSerial restores the single-threaded solver as a
// numerical oracle; the two differ only in round-off.
func WithEigSolver(s EigSolver) Option { return func(o *Options) { o.EigSolver = s } }

// EigTeamMinDim is the factor dimension below which a decomposition
// always runs on a single-worker team: the blocked solver falls back to
// the serial pair under linalg's own small-dimension threshold anyway,
// and launch overhead would dominate any split.
const EigTeamMinDim = 192

// EigTeamSize decides the intra-factor worker team for decomposing one
// factor of dimension dim on a rank with procs schedulable workers,
// given rankLoad — the total eigendecomposition cost (linalg.EigFLOPs)
// this rank owns under the active plan (Plan.WorkerLoads). The rule
// splits procs between inter-factor parallelism and intra-factor teams
// by cost share: a factor carrying the whole rank's load (the MEM-OPT
// one-big-factor case) gets the full machine, a factor that is one of
// many small ones gets a team of one and relies on the factor-level
// fan-out. Deterministic — a pure function of its arguments — so every
// rank computes identical team tables without communication.
func EigTeamSize(dim, procs int, rankLoad float64) int {
	if procs <= 1 || dim < EigTeamMinDim {
		return 1
	}
	cost := linalg.EigFLOPs(dim)
	if rankLoad < cost {
		rankLoad = cost
	}
	t := int(cost / rankLoad * float64(procs))
	if float64(t) < cost/rankLoad*float64(procs) {
		t++ // ceil
	}
	if t < 1 {
		t = 1
	}
	if t > procs {
		t = procs
	}
	return t
}

// weightedSem is a counting semaphore with weighted acquisition: the
// decomposition fan-out sizes each factor's hold to its team so that the
// sum of concurrently running teams never exceeds the machine. Weights
// above the capacity are clamped at acquire (a full-machine team then
// simply runs alone). FIFO fairness is not guaranteed — the fan-out
// sorts jobs largest-first and correctness does not depend on ordering.
type weightedSem struct {
	mu    sync.Mutex
	cond  sync.Cond
	avail int
	cap   int
}

// newWeightedSem returns a semaphore with the given capacity (≥ 1).
func newWeightedSem(capacity int) *weightedSem {
	if capacity < 1 {
		capacity = 1
	}
	s := &weightedSem{avail: capacity, cap: capacity}
	s.cond.L = &s.mu
	return s
}

// acquire blocks until w units (clamped to the capacity) are available
// and takes them. It returns the clamped weight for the matching release.
func (s *weightedSem) acquire(w int) int {
	if w < 1 {
		w = 1
	}
	if w > s.cap {
		w = s.cap
	}
	s.mu.Lock()
	for s.avail < w {
		s.cond.Wait()
	}
	s.avail -= w
	s.mu.Unlock()
	return w
}

// release returns w units taken by acquire.
func (s *weightedSem) release(w int) {
	s.mu.Lock()
	s.avail += w
	s.mu.Unlock()
	s.cond.Broadcast()
}

// computeEigTeams derives each factor's decomposition team from the
// active plan: factors are attributed to their owner rank, each rank's
// total decomposition cost comes from WorkerLoads over the plan's
// assignment, and every factor's team follows EigTeamSize against its
// owner's load. Recorded into the per-layer state (consumed by
// decomposeA/decomposeG) and surfaced through StageStats.EigTeams.
// Called from replan, so the table tracks ownership changes.
func (p *Preconditioner) computeEigTeams(procs int) {
	refs := p.FactorRefs()
	assign := make([]int, len(refs))
	for i := range p.states {
		lp := &p.plan.Layers[i]
		assign[2*i] = lp.AOwner
		assign[2*i+1] = lp.GOwner
	}
	loads := WorkerLoads(refs, assign, p.size())
	teams := make([]EigTeamAssign, 0, len(refs))
	for i, s := range p.states {
		da, dg := FactorDims(s.layer)
		s.aTeam = EigTeamSize(da, procs, loads[assign[2*i]])
		s.gTeam = EigTeamSize(dg, procs, loads[assign[2*i+1]])
		teams = append(teams,
			EigTeamAssign{Layer: i, IsG: false, Dim: da, Team: s.aTeam},
			EigTeamAssign{Layer: i, IsG: true, Dim: dg, Team: s.gTeam},
		)
	}
	p.stats.recordEigTeams(teams)
}

// eigJob is one owned decomposition in the fan-out queue.
type eigJob struct {
	layer int
	s     *layerState
	isG   bool
	dim   int
	team  int
}

// sortEigJobs orders the fan-out largest-dimension-first (ties: layer,
// then A before G) so big teamed factors start immediately and small
// serial factors pack into the remaining slots — a longest-processing-
// time schedule. Deterministic for reproducible stats and scheduling.
func sortEigJobs(jobs []eigJob) {
	sort.Slice(jobs, func(a, b int) bool {
		ja, jb := jobs[a], jobs[b]
		if ja.dim != jb.dim {
			return ja.dim > jb.dim
		}
		if ja.layer != jb.layer {
			return ja.layer < jb.layer
		}
		return !ja.isG && jb.isG
	})
}
