package kfac

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

// Damping refinements beyond the paper's constant-γ Tikhonov regularizer:
//
//   - π-corrected factored damping (Martens & Grosse 2015, §6.3): when the
//     damping is split across the two Kronecker factors, the split is scaled
//     by π = sqrt(avgtrace(A)/avgtrace(G)) so that both factors are
//     regularized proportionally to their scale:
//     (A + π√γ·I) ⊗ (G + √γ/π·I).
//   - the Levenberg–Marquardt adjustment rule (Martens & Grosse 2015,
//     §6.5): the damping shrinks when the quadratic model predicts the
//     actual loss reduction well and grows when it does not.
//
// Both are implemented as options so the paper's exact configuration
// (constant γ with step decay) remains the default.

// PiCorrection returns π = sqrt( (tr(A)/dim(A)) / (tr(G)/dim(G)) ), clamped
// to a sane range. π balances how much of the damping each factor absorbs.
func PiCorrection(a, g *tensor.Tensor) float64 {
	da, dg := a.Rows(), g.Rows()
	if da == 0 || dg == 0 {
		return 1
	}
	ta := linalg.Trace(a) / float64(da)
	tg := linalg.Trace(g) / float64(dg)
	if ta <= 0 || tg <= 0 {
		return 1
	}
	pi := math.Sqrt(ta / tg)
	// Clamp: extreme trace ratios (dead layers) would push all damping to
	// one side and destabilize the inverse.
	const lo, hi = 1e-3, 1e3
	if pi < lo {
		return lo
	}
	if pi > hi {
		return hi
	}
	return pi
}

// dampingSplit returns the per-factor damping terms (γ_A, γ_G) for the
// current options: √γ each side, π-scaled when enabled.
func (p *Preconditioner) dampingSplit(s *layerState) (ga, gg float64) {
	root := math.Sqrt(p.opts.Damping)
	pi := 1.0
	if p.opts.PiDamping {
		pi = s.pi
		if pi == 0 {
			pi = 1
		}
	}
	return root * pi, root / pi
}

// LMAdjust applies the Levenberg–Marquardt damping rule: rho is the ratio
// of actual to model-predicted loss reduction over the last interval. If
// rho > 3/4 the damping is multiplied by omega (ω < 1 shrinks it); if
// rho < 1/4 it is divided by omega. The result is clamped to
// [minDamping, maxDamping]. Typical ω is ~0.95 per adjustment.
func (p *Preconditioner) LMAdjust(rho, omega, minDamping, maxDamping float64) {
	if omega <= 0 || omega >= 1 {
		return
	}
	g := p.opts.Damping
	switch {
	case rho > 0.75:
		g *= omega
	case rho < 0.25:
		g /= omega
	}
	if g < minDamping {
		g = minDamping
	}
	if maxDamping > 0 && g > maxDamping {
		g = maxDamping
	}
	p.opts.Damping = g
}
