package kfac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildWideNet returns a net whose fc layer's A factor (257×257 with
// bias augmentation) crosses both the blocked-solver and team-size
// thresholds, so the blocked path and the eig scheduler actually engage.
func buildWideNet(seed int64) *nn.Sequential {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential("wide",
		nn.NewLinear("fc", 256, 8, true, rng),
		nn.NewReLU("relu"),
		nn.NewLinear("out", 8, 4, true, rng),
	)
}

// runWideStep performs one forward/backward on deterministic data.
func runWideStep(net *nn.Sequential, seed int64, batch int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Randn(rng, 1, batch, 256)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	out := net.Forward(x, true)
	ce := nn.CrossEntropy{}
	_, grad := ce.Loss(out, labels)
	nn.ZeroGrads(net)
	net.Backward(grad)
}

func TestEigTeamSize(t *testing.T) {
	cases := []struct {
		dim, procs int
		rankLoad   float64
		want       int
	}{
		// Single core or small factor: always a team of one.
		{dim: 4096, procs: 1, rankLoad: 0, want: 1},
		{dim: EigTeamMinDim - 1, procs: 8, rankLoad: 0, want: 1},
		// A factor carrying the rank's whole load gets the machine.
		{dim: 1024, procs: 8, rankLoad: linalg.EigFLOPs(1024), want: 8},
		{dim: 1024, procs: 8, rankLoad: 0, want: 8}, // load floored at own cost
		// Half the load → half the machine (ceil).
		{dim: 1024, procs: 8, rankLoad: 2 * linalg.EigFLOPs(1024), want: 4},
		// A big factor among many: cost share ~1/8 of an 8-proc machine.
		{dim: 256, procs: 8, rankLoad: 8 * linalg.EigFLOPs(256), want: 1},
		// Shares always round up, never to zero, never past procs.
		{dim: 256, procs: 8, rankLoad: 100 * linalg.EigFLOPs(256), want: 1},
		{dim: 4096, procs: 4, rankLoad: linalg.EigFLOPs(4096), want: 4},
	}
	for _, c := range cases {
		if got := EigTeamSize(c.dim, c.procs, c.rankLoad); got != c.want {
			t.Errorf("EigTeamSize(%d, %d, %.3g) = %d, want %d",
				c.dim, c.procs, c.rankLoad, got, c.want)
		}
	}
}

func TestWeightedSemClampsAndBalances(t *testing.T) {
	sem := newWeightedSem(4)
	if w := sem.acquire(100); w != 4 {
		t.Fatalf("acquire(100) took %d units, want clamp to 4", w)
	}
	sem.release(4)
	if w := sem.acquire(0); w != 1 {
		t.Fatalf("acquire(0) took %d units, want floor 1", w)
	}
	sem.release(1)
	// Capacity-many unit holds must all succeed without blocking.
	for i := 0; i < 4; i++ {
		sem.acquire(1)
	}
	done := make(chan struct{})
	go func() {
		sem.acquire(2) // blocks until two units free
		sem.release(2)
		close(done)
	}()
	sem.release(1)
	sem.release(1)
	<-done
	sem.release(1)
	sem.release(1)
}

// TestEigSolverBlockedMatchesSerialOracle preconditions the same wide net
// with the blocked solver (default) and the serial oracle
// (WithEigSolver(EigSerial)) and bounds their disagreement: the two
// solvers differ only in round-off, so the preconditioned gradients must
// agree far beyond what a wrong decomposition could survive.
func TestEigSolverBlockedMatchesSerialOracle(t *testing.T) {
	grads := make([][]*tensor.Tensor, 2)
	for i, solver := range []EigSolver{EigBlocked, EigSerial} {
		net := buildWideNet(91)
		prec := NewFromOptions(net, nil, Options{
			FactorUpdateFreq: 1, InvUpdateFreq: 1, Damping: 1e-3, EigSolver: solver,
		})
		runWideStep(net, 500, 8)
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
		for _, l := range nn.CapturableLayers(net) {
			for _, p := range l.Params() {
				grads[i] = append(grads[i], p.Grad.Clone())
			}
		}
	}
	if len(grads[0]) == 0 || len(grads[0]) != len(grads[1]) {
		t.Fatalf("gradient sets differ in shape: %d vs %d", len(grads[0]), len(grads[1]))
	}
	for k := range grads[0] {
		for i := range grads[0][k].Data {
			b, s := grads[0][k].Data[i], grads[1][k].Data[i]
			scale := math.Max(1, math.Max(math.Abs(b), math.Abs(s)))
			if math.Abs(b-s) > 1e-8*scale {
				t.Fatalf("param %d elem %d: blocked %v vs serial %v", k, i, b, s)
			}
		}
	}
}

// TestEigStatsSurfaceTeamsAndKernels checks the scheduler's observability
// contract: after a decomposition update the stage stats carry the team
// table (every factor, FactorRefs order) and, for blocked-path factors,
// nonzero per-kernel times.
func TestEigStatsSurfaceTeamsAndKernels(t *testing.T) {
	net := buildWideNet(92)
	prec := NewFromOptions(net, nil, Options{
		FactorUpdateFreq: 1, InvUpdateFreq: 1, Damping: 1e-3,
	})
	runWideStep(net, 501, 8)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	snap := prec.Stats().Snapshot()
	if len(snap.EigTeams) != 2*prec.NumLayers() {
		t.Fatalf("EigTeams has %d entries, want %d", len(snap.EigTeams), 2*prec.NumLayers())
	}
	refs := prec.FactorRefs()
	for i, e := range snap.EigTeams {
		if e.Layer != refs[i].Layer || e.IsG != refs[i].IsG || e.Dim != refs[i].Dim {
			t.Fatalf("EigTeams[%d] = %+v does not match FactorRefs[%d] = %+v", i, e, i, refs[i])
		}
		if e.Team < 1 {
			t.Fatalf("EigTeams[%d].Team = %d, want ≥ 1", i, e.Team)
		}
		if e.Dim < EigTeamMinDim && e.Team != 1 {
			t.Fatalf("EigTeams[%d]: dim %d below threshold got team %d", i, e.Dim, e.Team)
		}
	}
	// The 257-dim A factor runs the blocked kernels; their times must land.
	if snap.EigTridiag <= 0 || snap.EigBackAccum <= 0 || snap.EigQL <= 0 {
		t.Fatalf("blocked kernel times not recorded: tridiag=%v backaccum=%v ql=%v",
			snap.EigTridiag, snap.EigBackAccum, snap.EigQL)
	}
	if snap.EigCompute <= 0 {
		t.Fatal("EigCompute wall time not recorded")
	}
}

// TestEigSerialRecordsNoKernelTimes: the oracle path must not report
// blocked kernel breakdowns.
func TestEigSerialRecordsNoKernelTimes(t *testing.T) {
	net := buildWideNet(93)
	prec := NewFromOptions(net, nil, Options{
		FactorUpdateFreq: 1, InvUpdateFreq: 1, Damping: 1e-3, EigSolver: EigSerial,
	})
	runWideStep(net, 502, 8)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	snap := prec.Stats().Snapshot()
	if snap.EigTridiag != 0 || snap.EigBackAccum != 0 || snap.EigQL != 0 {
		t.Fatalf("serial solver reported blocked kernel times: tridiag=%v backaccum=%v ql=%v",
			snap.EigTridiag, snap.EigBackAccum, snap.EigQL)
	}
}

// TestKFACStepSteadyStateZeroAllocsWide extends the allocation guard to a
// net whose factors take the blocked eigensolver path: the steady-state
// stale-decomposition Step must stay allocation-free with the blocked
// solver active (its workspaces live in linalg's arena and pools).
func TestKFACStepSteadyStateZeroAllocsWide(t *testing.T) {
	net := buildWideNet(94)
	prec := NewFromOptions(net, nil, Options{
		FactorUpdateFreq: 1 << 30, InvUpdateFreq: 1 << 30, Damping: 1e-3,
	})
	runWideStep(net, 503, 8)
	for i := 0; i < 3; i++ {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state wide-net Step allocated %.1f times per run, want 0", allocs)
	}
}

// TestDecomposeFailurePreservesPreviousEigenBlocked mirrors the NaN-injection
// guard on the blocked path: SymEigBlockedInto validates inputs identically
// to the serial solver, so a poisoned wide factor must error out without
// clobbering the last good decomposition.
func TestDecomposeFailurePreservesPreviousEigenBlocked(t *testing.T) {
	net := buildWideNet(95)
	p := NewFromOptions(net, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runWideStep(net, 504, 8)
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	s := p.states[0]
	q0 := s.eigA.Q.Clone()
	s.A.Data[0] = math.NaN()
	if err := p.decomposeA(s); err == nil {
		t.Fatal("blocked decomposeA accepted a NaN factor")
	}
	if !s.eigA.Q.Equal(q0, 0) {
		t.Error("failed blocked decomposition clobbered the previous eigenbasis")
	}
}
