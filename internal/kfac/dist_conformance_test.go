package kfac

import (
	"fmt"
	"testing"

	"repro/internal/testenv"
)

// TestDistModesBitIdenticalAcrossWorlds is the acceptance gate for the
// distribution-plan refactor: at every world size, COMM-OPT, MEM-OPT, and
// HYBRID (f ∈ {0.25, 0.5}) must produce bit-identical same-seed
// preconditioned gradients to each other and to the default configuration
// (DistAuto over RoundRobin — the pre-refactor COMM-OPT reference path),
// for both step engines, on every rank. The modes move identical bits to
// different places (eigendecomposition is a pure function of the averaged
// factors, preconditioning a pure function of the eigenbases and the
// gradient, and broadcasts preserve bits), so any divergence is a plan
// bookkeeping bug.
func TestDistModesBitIdenticalAcrossWorlds(t *testing.T) {
	maxWorld := testenv.Scale(8, 4)
	const steps = 4
	base := Options{FactorUpdateFreq: 1, InvUpdateFreq: 2}
	type cfg struct {
		name     string
		strategy Strategy
		mode     DistMode
		frac     float64
		engine   Engine
	}
	var cfgs []cfg
	for _, engine := range []Engine{EngineSync, EnginePipelined} {
		for _, mc := range []struct {
			name string
			mode DistMode
			frac float64
		}{
			{"commopt", CommOpt, 0},
			{"memopt", MemOpt, 0},
			{"hybrid25", Hybrid, 0.25},
			{"hybrid50", Hybrid, 0.5},
		} {
			cfgs = append(cfgs, cfg{
				name: fmt.Sprintf("%s_%s", mc.name, engine), mode: mc.mode,
				frac: mc.frac, engine: engine,
			})
		}
	}
	// Split A/G ownership under a second strategy too: SizeGreedy routinely
	// places a layer's factors on different owners, exercising the
	// owner→gradient-worker eigenbasis transfer. Placement only moves work,
	// never changes bits, so these still compare against the same
	// reference.
	cfgs = append(cfgs,
		cfg{name: "memopt_greedy", strategy: SizeGreedy, mode: MemOpt},
		cfg{name: "hybrid50_greedy_pipelined", strategy: SizeGreedy, mode: Hybrid, frac: 0.5, engine: EnginePipelined},
	)

	for world := 1; world <= maxWorld; world++ {
		ref := worldStepTrace(t, world, base, steps)
		for _, c := range cfgs {
			opts := base
			opts.Strategy = c.strategy
			opts.DistMode = c.mode
			opts.GradWorkerFrac = c.frac
			opts.Engine = c.engine
			got := worldStepTrace(t, world, opts, steps)
			for r := range got {
				if len(got[r]) == 0 {
					t.Fatalf("world %d %s rank %d: empty trace", world, c.name, r)
				}
				for i := range got[r] {
					if !got[r][i].Equal(ref[r][i], 0) {
						t.Errorf("world %d %s rank %d layer %d: gradients differ from reference (exact comparison)",
							world, c.name, r, i)
					}
				}
			}
		}
	}
}
