package kfac

import (
	"fmt"
	"sync"
	"time"
)

// StageStats accumulates wall-clock time per K-FAC pipeline stage of the
// *real* implementation — the measured analogue of the paper's Table V
// profile (factor computation vs communication, eigendecomposition vs
// communication) plus the per-iteration preconditioning cost.
type StageStats struct {
	mu sync.Mutex

	FactorCompute time.Duration
	FactorComm    time.Duration
	EigCompute    time.Duration
	EigComm       time.Duration
	Precondition  time.Duration

	FactorUpdates int
	EigUpdates    int
	Steps         int
}

func (s *StageStats) add(dst *time.Duration, d time.Duration) {
	s.mu.Lock()
	*dst += d
	s.mu.Unlock()
}

// Snapshot returns a copy safe for concurrent readers.
func (s *StageStats) Snapshot() StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StageStats{
		FactorCompute: s.FactorCompute,
		FactorComm:    s.FactorComm,
		EigCompute:    s.EigCompute,
		EigComm:       s.EigComm,
		Precondition:  s.Precondition,
		FactorUpdates: s.FactorUpdates,
		EigUpdates:    s.EigUpdates,
		Steps:         s.Steps,
	}
}

// PerFactorUpdate returns mean (compute, comm) time per factor update.
func (s *StageStats) PerFactorUpdate() (comp, comm time.Duration) {
	snap := s.Snapshot()
	if snap.FactorUpdates == 0 {
		return 0, 0
	}
	n := time.Duration(snap.FactorUpdates)
	return snap.FactorCompute / n, snap.FactorComm / n
}

// PerEigUpdate returns mean (compute, comm) time per decomposition update.
func (s *StageStats) PerEigUpdate() (comp, comm time.Duration) {
	snap := s.Snapshot()
	if snap.EigUpdates == 0 {
		return 0, 0
	}
	n := time.Duration(snap.EigUpdates)
	return snap.EigCompute / n, snap.EigComm / n
}

// String renders the profile in the Table V layout.
func (s *StageStats) String() string {
	fc, fm := s.PerFactorUpdate()
	ec, em := s.PerEigUpdate()
	snap := s.Snapshot()
	perStep := time.Duration(0)
	if snap.Steps > 0 {
		perStep = snap.Precondition / time.Duration(snap.Steps)
	}
	return fmt.Sprintf(
		"kfac profile: factor Tcomp=%v Tcomm=%v (×%d) | eig Tcomp=%v Tcomm=%v (×%d) | precond/step=%v (×%d)",
		fc.Round(time.Microsecond), fm.Round(time.Microsecond), snap.FactorUpdates,
		ec.Round(time.Microsecond), em.Round(time.Microsecond), snap.EigUpdates,
		perStep.Round(time.Microsecond), snap.Steps)
}

// Stats returns the preconditioner's accumulated stage profile.
func (p *Preconditioner) Stats() *StageStats { return &p.stats }
