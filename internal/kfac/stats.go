package kfac

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/linalg"
)

// StageStats accumulates wall-clock time per K-FAC pipeline stage of the
// *real* implementation — the measured analogue of the paper's Table V
// profile (factor computation vs communication, eigendecomposition vs
// communication) plus the per-iteration preconditioning cost.
type StageStats struct {
	mu sync.Mutex

	FactorCompute time.Duration
	FactorComm    time.Duration
	EigCompute    time.Duration
	EigComm       time.Duration
	Precondition  time.Duration

	// Per-kernel decomposition time of the blocked eigensolver, summed
	// across factors (zero under EigSerial and for small factors on the
	// serial fallback). EigCompute remains the fan-out's wall-clock; these
	// are summed task time, so their total can exceed EigCompute when
	// factors decompose concurrently.
	EigTridiag   time.Duration
	EigBackAccum time.Duration
	EigQL        time.Duration

	FactorUpdates int
	EigUpdates    int
	Steps         int

	// Pipelined-engine metrics (zero under EngineSync). PipelineWall is the
	// wall-clock spent inside pipelined update phases; PipelineWork is the
	// summed stage time folded into those phases — per-task compute time
	// plus each communication phase measured as a first-issue→last-
	// completion window (so concurrent in-flight collectives are never
	// double-counted); PipelineIdle is the time stage issuers spent
	// starved, blocked on upstream per-layer events. Work in excess of
	// wall is time the pipeline overlapped — see Overlap.
	PipelineWall    time.Duration
	PipelineWork    time.Duration
	PipelineIdle    time.Duration
	PipelineUpdates int

	// PeakFactorBytes is the high-water mark of this rank's resident K-FAC
	// factor state (running averages, workspaces, and the decompositions
	// the distribution plan placed here), in bytes — the per-rank memory
	// side of the MEM-OPT/COMM-OPT tradeoff, recorded at every plan build
	// and factor/decomposition update.
	PeakFactorBytes int64

	// TuneDecisions records every autotune consensus decision in step
	// order (empty when WithAutotune is off). Every field of every entry
	// is a consensus output or a pure function of one, so the slice must
	// be deep-equal across ranks — the determinism suite asserts exactly
	// that.
	TuneDecisions []TuneDecision

	// EigTeams records the eig scheduler's intra-factor team decision for
	// every factor under the active plan, in FactorRefs order (layer-major,
	// A before G); rewritten at every plan build. A pure function of
	// (plan, GOMAXPROCS), identical across same-shaped ranks.
	EigTeams []EigTeamAssign
}

// EigTeamAssign is one factor's decomposition team decision.
type EigTeamAssign struct {
	// Layer indexes the preconditioned layer; IsG selects the G factor.
	Layer int
	IsG   bool
	// Dim is the factor dimension; Team the assigned worker-team size.
	Dim  int
	Team int
}

// recordEigTeams replaces the team table (called at every plan build).
func (s *StageStats) recordEigTeams(teams []EigTeamAssign) {
	s.mu.Lock()
	s.EigTeams = teams
	s.mu.Unlock()
}

// addEigKernels folds one blocked decomposition's per-kernel times in.
func (s *StageStats) addEigKernels(tm *linalg.EigKernelTimes) {
	s.mu.Lock()
	s.EigTridiag += time.Duration(tm.TridiagNS)
	s.EigBackAccum += time.Duration(tm.BackAccumNS)
	s.EigQL += time.Duration(tm.QLNS)
	s.mu.Unlock()
}

// recordTune appends one autotune decision.
func (s *StageStats) recordTune(d TuneDecision) {
	s.mu.Lock()
	s.TuneDecisions = append(s.TuneDecisions, d)
	s.mu.Unlock()
}

// noteFactorMem raises the PeakFactorBytes high-water mark.
func (s *StageStats) noteFactorMem(cur int64) {
	s.mu.Lock()
	if cur > s.PeakFactorBytes {
		s.PeakFactorBytes = cur
	}
	s.mu.Unlock()
}

func (s *StageStats) add(dst *time.Duration, d time.Duration) {
	s.mu.Lock()
	*dst += d
	s.mu.Unlock()
}

// Snapshot returns a copy safe for concurrent readers.
func (s *StageStats) Snapshot() StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StageStats{
		FactorCompute:   s.FactorCompute,
		FactorComm:      s.FactorComm,
		EigCompute:      s.EigCompute,
		EigComm:         s.EigComm,
		Precondition:    s.Precondition,
		EigTridiag:      s.EigTridiag,
		EigBackAccum:    s.EigBackAccum,
		EigQL:           s.EigQL,
		FactorUpdates:   s.FactorUpdates,
		EigUpdates:      s.EigUpdates,
		Steps:           s.Steps,
		PipelineWall:    s.PipelineWall,
		PipelineWork:    s.PipelineWork,
		PipelineIdle:    s.PipelineIdle,
		PipelineUpdates: s.PipelineUpdates,
		PeakFactorBytes: s.PeakFactorBytes,
		TuneDecisions:   append([]TuneDecision(nil), s.TuneDecisions...),
		EigTeams:        append([]EigTeamAssign(nil), s.EigTeams...),
	}
}

// overlapOf computes the overlap metric from already-snapshotted values.
func overlapOf(work, wall time.Duration) time.Duration {
	if d := work - wall; d > 0 {
		return d
	}
	return 0
}

// Overlap estimates the time the pipelined engine saved by overlapping
// compute with communication and parallelizing across layers: total task
// busy time minus the wall-clock the update phases actually took. Zero for
// the synchronous engine (whose work and wall coincide by construction).
func (s *StageStats) Overlap() time.Duration {
	snap := s.Snapshot()
	return overlapOf(snap.PipelineWork, snap.PipelineWall)
}

// PerFactorUpdate returns mean (compute, comm) time per factor update.
func (s *StageStats) PerFactorUpdate() (comp, comm time.Duration) {
	snap := s.Snapshot()
	if snap.FactorUpdates == 0 {
		return 0, 0
	}
	n := time.Duration(snap.FactorUpdates)
	return snap.FactorCompute / n, snap.FactorComm / n
}

// PerEigUpdate returns mean (compute, comm) time per decomposition update.
func (s *StageStats) PerEigUpdate() (comp, comm time.Duration) {
	snap := s.Snapshot()
	if snap.EigUpdates == 0 {
		return 0, 0
	}
	n := time.Duration(snap.EigUpdates)
	return snap.EigCompute / n, snap.EigComm / n
}

// String renders the profile in the Table V layout.
func (s *StageStats) String() string {
	fc, fm := s.PerFactorUpdate()
	ec, em := s.PerEigUpdate()
	snap := s.Snapshot()
	perStep := time.Duration(0)
	if snap.Steps > 0 {
		perStep = snap.Precondition / time.Duration(snap.Steps)
	}
	out := fmt.Sprintf(
		"kfac profile: factor Tcomp=%v Tcomm=%v (×%d) | eig Tcomp=%v Tcomm=%v (×%d) | precond/step=%v (×%d)",
		fc.Round(time.Microsecond), fm.Round(time.Microsecond), snap.FactorUpdates,
		ec.Round(time.Microsecond), em.Round(time.Microsecond), snap.EigUpdates,
		perStep.Round(time.Microsecond), snap.Steps)
	if snap.EigTridiag+snap.EigBackAccum+snap.EigQL > 0 {
		out += fmt.Sprintf(" | eig kernels tridiag=%v backaccum=%v ql=%v",
			snap.EigTridiag.Round(time.Microsecond), snap.EigBackAccum.Round(time.Microsecond),
			snap.EigQL.Round(time.Microsecond))
	}
	if snap.PipelineUpdates > 0 {
		// Reuse the snapshot so the line is self-consistent even when
		// sampled mid-step.
		out += fmt.Sprintf(" | pipeline wall=%v work=%v idle=%v overlap=%v (×%d)",
			snap.PipelineWall.Round(time.Microsecond), snap.PipelineWork.Round(time.Microsecond),
			snap.PipelineIdle.Round(time.Microsecond),
			overlapOf(snap.PipelineWork, snap.PipelineWall).Round(time.Microsecond),
			snap.PipelineUpdates)
	}
	return out
}

// Stats returns the preconditioner's accumulated stage profile.
func (p *Preconditioner) Stats() *StageStats { return &p.stats }
