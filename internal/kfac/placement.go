package kfac

import (
	"sort"

	"repro/internal/linalg"
)

// Strategy selects how K-FAC work is distributed across workers (§IV-B,
// §VI-C3).
type Strategy int

const (
	// RoundRobin assigns each factor (A and G independently) to workers in
	// a greedy round-robin order. This is the paper's K-FAC-opt scheme: A
	// and G of the same layer can land on different workers, doubling
	// worker utilization relative to layer-wise distribution.
	RoundRobin Strategy = iota
	// LayerWise assigns whole layers to workers (Osawa et al.; the paper's
	// K-FAC-lw baseline): one worker computes both eigendecompositions and
	// the preconditioned gradient for its layers, then broadcasts the
	// result every iteration.
	LayerWise
	// SizeGreedy is the placement policy the paper proposes in §VI-C4 as
	// future work: factors are sorted by estimated eigendecomposition cost
	// (descending) and each is assigned to the currently least-loaded
	// worker, balancing aggregate cost instead of factor counts.
	SizeGreedy
)

// String returns the scheme name used in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "K-FAC-opt"
	case LayerWise:
		return "K-FAC-lw"
	case SizeGreedy:
		return "K-FAC-greedy"
	}
	return "unknown"
}

// FactorRef identifies one Kronecker factor for placement purposes.
type FactorRef struct {
	Layer int  // layer index
	IsG   bool // false = A factor, true = G factor
	Dim   int  // matrix dimension
}

// Cost returns the modeled eigendecomposition cost of the factor.
func (f FactorRef) Cost() float64 { return linalg.EigFLOPs(f.Dim) }

// Planner produces the factor→owner assignment of a distribution plan.
// Implementations must be deterministic pure functions of (factors,
// workers): every rank computes the assignment independently and the
// results must agree without communication (Algorithm 1, line 9).
// Strategies resolve to planners through a registry (RegisterPlanner), so
// new placement policies plug in without touching the engines — they only
// ever see the resolved Plan.
type Planner interface {
	// Name identifies the planner in logs and plan summaries.
	Name() string
	// Assign maps each factor (placement order) to an owner in [0, workers).
	Assign(factors []FactorRef, workers int) []int
}

// roundRobinPlanner is the paper's K-FAC-opt scheme.
type roundRobinPlanner struct{}

// Name implements Planner.
func (roundRobinPlanner) Name() string { return RoundRobin.String() }

// Assign implements Planner.
func (roundRobinPlanner) Assign(factors []FactorRef, workers int) []int {
	out := make([]int, len(factors))
	for i := range factors {
		out[i] = i % workers
	}
	return out
}

// layerWisePlanner is the Osawa et al. K-FAC-lw baseline: both factors of a
// layer land on the same owner.
type layerWisePlanner struct{}

// Name implements Planner.
func (layerWisePlanner) Name() string { return LayerWise.String() }

// Assign implements Planner.
func (layerWisePlanner) Assign(factors []FactorRef, workers int) []int {
	out := make([]int, len(factors))
	for i, f := range factors {
		out[i] = f.Layer % workers
	}
	return out
}

// sizeGreedyPlanner implements the §VI-C4 cost-balancing policy: factors in
// descending modeled eigendecomposition cost, each to the least-loaded
// owner (longest-processing-time-first).
type sizeGreedyPlanner struct{}

// Name implements Planner.
func (sizeGreedyPlanner) Name() string { return SizeGreedy.String() }

// Assign implements Planner.
func (sizeGreedyPlanner) Assign(factors []FactorRef, workers int) []int {
	out := make([]int, len(factors))
	order := make([]int, len(factors))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return factors[order[a]].Cost() > factors[order[b]].Cost()
	})
	load := make([]float64, workers)
	for _, idx := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		out[idx] = best
		load[best] += factors[idx].Cost()
	}
	return out
}

// planners is the Strategy→Planner registry BuildPlan consults.
var planners = map[Strategy]Planner{
	RoundRobin: roundRobinPlanner{},
	LayerWise:  layerWisePlanner{},
	SizeGreedy: sizeGreedyPlanner{},
}

// RegisterPlanner installs (or replaces) the planner backing a strategy.
// Call before any preconditioner is built; the registry is not synchronized
// for concurrent mutation. All ranks must register identical planners — the
// no-communication agreement contract extends to custom policies.
func RegisterPlanner(s Strategy, p Planner) { planners[s] = p }

// PlannerFor returns the planner registered for a strategy (RoundRobin's
// when the strategy is unknown).
func PlannerFor(s Strategy) Planner {
	if p, ok := planners[s]; ok {
		return p
	}
	return planners[RoundRobin]
}

// Assign maps each factor to a worker under the given strategy. The result
// is deterministic, so every rank computes the same assignment without
// communication (Algorithm 1, line 9).
func Assign(strategy Strategy, factors []FactorRef, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	return PlannerFor(strategy).Assign(factors, workers)
}

// WorkerLoads aggregates the modeled eigendecomposition cost assigned to
// each worker. The spread between min and max load is what Table VI
// measures via min/max worker speedups.
func WorkerLoads(factors []FactorRef, assign []int, workers int) []float64 {
	loads := make([]float64, workers)
	for i, f := range factors {
		loads[assign[i]] += f.Cost()
	}
	return loads
}

// LoadStats returns the minimum, maximum and mean of non-trivial worker
// loads. Workers with zero assigned cost count toward min (idle workers are
// exactly the §IV scaling concern).
func LoadStats(loads []float64) (minLoad, maxLoad, mean float64) {
	if len(loads) == 0 {
		return 0, 0, 0
	}
	minLoad, maxLoad = loads[0], loads[0]
	var sum float64
	for _, l := range loads {
		if l < minLoad {
			minLoad = l
		}
		if l > maxLoad {
			maxLoad = l
		}
		sum += l
	}
	return minLoad, maxLoad, sum / float64(len(loads))
}

// ParamsPerWorker returns the total parameter count (Σ dimA·dimG per layer)
// assigned to each worker under a layer-oriented view: a layer's parameters
// are attributed to the worker owning its G factor (the preconditioning
// side). Used to reproduce the §VI-C4 parameter-imbalance observation.
func ParamsPerWorker(factors []FactorRef, assign []int, workers int, layerParams map[int]int) []int {
	out := make([]int, workers)
	for i, f := range factors {
		if f.IsG {
			out[assign[i]] += layerParams[f.Layer]
		}
	}
	return out
}
