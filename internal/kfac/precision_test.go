package kfac

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestParsePrecision(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", F64, true}, {"f64", F64, true}, {"float64", F64, true},
		{"f32", F32, true}, {"float32", F32, true},
		{"fp16", F64, false}, {"F32", F64, false},
	} {
		got, err := ParsePrecision(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Errorf("Precision.String: got %q/%q", F64.String(), F32.String())
	}
}

// relFrobErr returns ‖got−want‖_F / (1 + ‖want‖_F).
func relFrobErr(got, want *tensor.Tensor) float64 {
	var num, den float64
	for i := range want.Data {
		d := got.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	return math.Sqrt(num) / (1 + math.Sqrt(den))
}

// f32StepTol is the acceptance bound for the float32 compute path at the
// K-FAC step level: the preconditioned gradient must stay within float32
// working precision of the float64 reference, allowing for the damped
// spectral amplification (γ = 1e-3 admits condition numbers up to ~1e3 on
// the tiny-net factors, multiplying the ~1e-7 elementwise round-off).
const f32StepTol = 1e-3

// TestF32StepMatchesF64SingleProcess runs several full preconditioned steps
// through the float32 kernel path — factors, eigendecompositions stay f64,
// but every Gram product and preconditioning matmul runs in float32 — and
// requires each layer's final gradient to track the float64 reference
// within f32StepTol, for both preconditioning modes and both step engines.
func TestF32StepMatchesF64SingleProcess(t *testing.T) {
	for _, mode := range []Mode{EigenMode, InverseMode} {
		for _, engine := range []Engine{EngineSync, EnginePipelined} {
			base := Options{Mode: mode, Engine: engine, FactorUpdateFreq: 1, InvUpdateFreq: 2}
			want := stepTrace(t, nil, base, 5)
			f32opts := base
			f32opts.Precision = F32
			got := stepTrace(t, nil, f32opts, 5)
			for i := range want {
				if e := relFrobErr(got[i], want[i]); e > f32StepTol {
					t.Errorf("mode=%v engine=%v layer %d: f32 relative error %.3e > %.0e",
						mode, engine, i, e, f32StepTol)
				}
			}
		}
	}
}

// TestF32StepMatchesF64AcrossWorlds is the distributed counterpart: worlds
// 1–4 under the round-robin COMM-OPT plan and the LayerWise-implied MEM-OPT
// plan (which exercises the widened-pcBuf broadcast boundary: the float32
// result must widen to float64 before the preconditioned-gradient
// broadcast so full- and mixed-precision payloads stay wire-compatible).
func TestF32StepMatchesF64AcrossWorlds(t *testing.T) {
	for _, strategy := range []Strategy{RoundRobin, LayerWise} {
		for p := 1; p <= 4; p++ {
			base := Options{Strategy: strategy, FactorUpdateFreq: 1, InvUpdateFreq: 2}
			want := worldStepTrace(t, p, base, 4)
			f32opts := base
			f32opts.Precision = F32
			got := worldStepTrace(t, p, f32opts, 4)
			for r := range want {
				for i := range want[r] {
					if e := relFrobErr(got[r][i], want[r][i]); e > f32StepTol {
						t.Errorf("strategy=%v world %d rank %d layer %d: f32 relative error %.3e",
							strategy, p, r, i, e)
					}
				}
			}
		}
	}
}

// TestF32StepWithF32ComputeLayers drives the fully fused configuration the
// trainer enables under --precision f32: the nn layers compute in float32
// (so K-FAC consumes their native float32 captures via KFACCapturable32,
// with no narrowing pass) and the preconditioner runs its float32 kernels.
// The result must still track an all-float64 run of the same seed.
func TestF32StepWithF32ComputeLayers(t *testing.T) {
	trace := func(f32 bool) []*tensor.Tensor {
		net := buildTinyNet(42)
		opts := Options{FactorUpdateFreq: 1, InvUpdateFreq: 2}
		if f32 {
			nn.SetComputeF32(net, true)
			opts.Precision = F32
		}
		prec := NewFromOptions(net, nil, opts)
		defer prec.Close()
		for i := 0; i < 5; i++ {
			runStep(net, int64(1000+i), 4)
			if err := prec.Step(0.1); err != nil {
				t.Fatal(err)
			}
		}
		var out []*tensor.Tensor
		for _, l := range nn.CapturableLayers(net) {
			out = append(out, l.CombinedGrad().Clone())
		}
		return out
	}
	want := trace(false)
	got := trace(true)
	// Looser than f32StepTol: the forward/backward pass itself is float32
	// here, so the captures (and hence factors) carry rounded inputs too.
	const tol = 5e-3
	for i := range want {
		if e := relFrobErr(got[i], want[i]); e > tol {
			t.Errorf("layer %d: fused f32 relative error %.3e > %.0e", i, e, tol)
		}
	}
}

// TestKFACStepSteadyStateZeroAllocsF32 extends the steady-state allocation
// guard to the float32 path: once the mirrors and float32 workspaces have
// settled, a stale-decomposition Step must not allocate.
func TestKFACStepSteadyStateZeroAllocsF32(t *testing.T) {
	net := buildTinyNet(81)
	nn.SetComputeF32(net, true)
	prec := NewFromOptions(net, nil, Options{
		Precision: F32, FactorUpdateFreq: 1 << 30, InvUpdateFreq: 1 << 30, Damping: 1e-3,
	})
	runStep(net, 303, 4)
	for i := 0; i < 3; i++ {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state f32 Step allocated %.1f times per run, want 0", allocs)
	}
}

// TestF32FactorsStayFloat64 pins the convert-at-the-boundary contract: under
// Precision == F32 the running-average factors, decompositions, and the
// preconditioned-gradient buffer all remain float64 tensors (so factor
// allreduce, decomposition records, and checkpoints are unchanged), while
// the float32 state is confined to the derived mirrors.
func TestF32FactorsStayFloat64(t *testing.T) {
	net := buildTinyNet(82)
	prec := NewFromOptions(net, nil, Options{Precision: F32, FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runStep(net, 304, 4)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	for i, s := range prec.states {
		if s.A == nil || s.G == nil || s.eigA == nil || s.eigG == nil || s.pcBuf == nil {
			t.Fatalf("layer %d: float64 state missing under F32", i)
		}
		if s.f32 == nil || s.f32.qA == nil || s.f32.qG == nil {
			t.Fatalf("layer %d: float32 mirrors not refreshed", i)
		}
		// The mirror must be the narrowed image of the current eigenbasis.
		n := s.eigA.Q.Rows()
		for j := 0; j < n*n; j++ {
			if s.f32.qA.Data[j] != float32(s.eigA.Q.Data[j]) {
				t.Fatalf("layer %d: stale qA mirror at %d", i, j)
			}
		}
	}
}
