package kfac

// Cost-model-driven plan selection. The legacy DistAuto behavior is a
// two-case rule (ResolveDistMode: LayerWise → MemOpt, else CommOpt); at
// hundreds of ranks that rule is blind to the actual memory/communication
// tradeoff the paper's scaling story is about. When a PlanCostModel is
// supplied (WithAutoPlanner), plan resolution instead enumerates candidate
// (DistMode, GradWorkerFrac, GroupSize) configurations, rejects those whose
// worst per-rank resident decomposition footprint exceeds a declared
// budget, and picks the cheapest under the model. The selection is a
// deterministic pure function of the BuildPlan inputs — every rank computes
// the identical decision with no communication, exactly like BuildPlan
// itself (Algorithm 1, line 9). Without a model the legacy rule applies
// unchanged, bit-identical to the pre-planner behavior.

// PlanCandidate is one point of the auto-planner's configuration grid.
type PlanCandidate struct {
	// Mode is the distribution mode under evaluation (never DistAuto).
	Mode DistMode
	// GradWorkerFrac sizes Hybrid gradient-worker sets; 0 for the other
	// modes.
	GradWorkerFrac float64
	// GroupSize is the hierarchical-allreduce group size routed to the
	// factor (and gradient) collectives; 0 keeps the flat ring.
	GroupSize int
}

// PlanCostModel predicts what a candidate configuration costs. The
// canonical implementation is simulate.PlanModel, which prices the
// collectives on a node/rack Topology; anything deterministic in its
// arguments works. Implementations MUST be pure functions of their
// arguments: the decision is replicated independently on every rank.
type PlanCostModel interface {
	// CandidateCost returns the predicted amortized per-iteration cost in
	// seconds and the worst per-rank resident decomposition footprint in
	// bytes for the plan BuildPlan(strategy, cand.Mode, cand.GradWorkerFrac,
	// refs, world) driven with hierarchical group size cand.GroupSize.
	CandidateCost(strategy Strategy, refs []FactorRef, world int, cand PlanCandidate) (stepSec float64, maxMemBytes int64)
}

// AutoPlannerConfig configures cost-model-driven DistAuto resolution.
type AutoPlannerConfig struct {
	// Model prices candidates. nil disables the planner entirely: DistAuto
	// falls back to the legacy two-case rule (ResolveDistMode) and the
	// resulting plans are bit-identical to the pre-planner behavior.
	Model PlanCostModel
	// MemoryBudgetBytes is the per-worker budget for resident
	// decompositions. Candidates whose worst rank exceeds it are rejected.
	// 0 means unlimited.
	MemoryBudgetBytes int64
	// HybridFracs lists the Hybrid gradient-worker fractions to consider.
	// Empty selects DefaultHybridFracs.
	HybridFracs []float64
	// GroupSizes lists the hierarchical-allreduce group sizes to consider
	// (0 = flat ring is always considered first). Empty selects
	// DefaultGroupSizes.
	GroupSizes []int
}

// DefaultHybridFracs is the Hybrid gradient-worker-fraction grid the
// planner sweeps when the config leaves HybridFracs empty: enough points to
// trace the memory/communication interpolation without exploding the grid.
var DefaultHybridFracs = []float64{0.125, 0.25, 0.5}

// DefaultGroupSizes is the hierarchical group-size grid when the config
// leaves GroupSizes empty: the flat ring plus the common ranks-per-node
// counts of GPU clusters.
var DefaultGroupSizes = []int{0, 4, 8}

// PlanDecision records one auto-planner resolution for logs, CLI tables and
// the daemon's placement hints.
type PlanDecision struct {
	// PlanCandidate is the chosen configuration.
	PlanCandidate
	// PredictedStepSec is the model's amortized per-iteration cost of the
	// chosen candidate.
	PredictedStepSec float64
	// PredictedMemBytes is the worst per-rank resident decomposition
	// footprint of the chosen candidate.
	PredictedMemBytes int64
	// Candidates is the grid size enumerated.
	Candidates int
	// Rejected counts candidates discarded for exceeding the memory budget.
	Rejected int
	// OverBudget reports that NO candidate fit the budget; the decision is
	// then the minimum-memory candidate so training can still proceed (the
	// admission layer is where a hard rejection belongs).
	OverBudget bool
}

// PlanCandidates materializes the enumeration grid in its fixed,
// deterministic order: for each group size, CommOpt, each Hybrid fraction
// ascending, then MemOpt. Order matters — cost ties resolve to the earliest
// candidate, so it must be identical on every rank. Exported so CLI tables
// (kfac-sim -plan-sweep) can print the same grid the planner scores.
func PlanCandidates(cfg AutoPlannerConfig) []PlanCandidate {
	fracs := cfg.HybridFracs
	if len(fracs) == 0 {
		fracs = DefaultHybridFracs
	}
	sizes := cfg.GroupSizes
	if len(sizes) == 0 {
		sizes = DefaultGroupSizes
	}
	out := make([]PlanCandidate, 0, len(sizes)*(len(fracs)+2))
	for _, g := range sizes {
		out = append(out, PlanCandidate{Mode: CommOpt, GroupSize: g})
		for _, f := range fracs {
			out = append(out, PlanCandidate{Mode: Hybrid, GradWorkerFrac: f, GroupSize: g})
		}
		out = append(out, PlanCandidate{Mode: MemOpt, GroupSize: g})
	}
	return out
}

// ResolveAutoPlan runs the cost-model planner: enumerate the candidate
// grid, reject candidates over the memory budget, pick the cheapest
// (earliest grid position wins ties). A pure function of its arguments —
// identical on every rank and across repeated calls. When cfg.Model is nil
// the legacy two-case rule decides, with zero cost/memory predictions.
func ResolveAutoPlan(cfg AutoPlannerConfig, strategy Strategy, refs []FactorRef, world int) PlanDecision {
	if world < 1 {
		world = 1
	}
	if cfg.Model == nil {
		return PlanDecision{PlanCandidate: PlanCandidate{
			Mode: ResolveDistMode(DistAuto, strategy),
		}}
	}
	cands := PlanCandidates(cfg)
	d := PlanDecision{Candidates: len(cands)}
	var (
		bestSet    bool
		bestCost   float64
		bestMem    int64
		best       PlanCandidate
		minMemSet  bool
		minMem     int64
		minMemCand PlanCandidate
		minMemCost float64
	)
	for _, cand := range cands {
		cost, mem := cfg.Model.CandidateCost(strategy, refs, world, cand)
		if !minMemSet || mem < minMem {
			minMemSet, minMem, minMemCand, minMemCost = true, mem, cand, cost
		}
		if cfg.MemoryBudgetBytes > 0 && mem > cfg.MemoryBudgetBytes {
			d.Rejected++
			continue
		}
		if !bestSet || cost < bestCost {
			bestSet, bestCost, bestMem, best = true, cost, mem, cand
		}
	}
	if !bestSet {
		// Every candidate blew the budget: degrade to the minimum-memory
		// configuration rather than failing plan construction — admission
		// control (ctl.Admit) is the layer that rejects jobs outright.
		d.OverBudget = true
		d.PlanCandidate, d.PredictedStepSec, d.PredictedMemBytes = minMemCand, minMemCost, minMem
		return d
	}
	d.PlanCandidate, d.PredictedStepSec, d.PredictedMemBytes = best, bestCost, bestMem
	return d
}
