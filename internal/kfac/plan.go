package kfac

import (
	"fmt"
	"math"
	"sort"
)

// DistMode selects where a resolved distribution plan places the
// per-iteration preconditioning work — the memory/communication tradeoff
// the paper leaves as future work and its KAISA lineage later formalized
// as MEM-OPT vs COMM-OPT.
type DistMode int

const (
	// DistAuto derives the mode from the placement strategy, reproducing
	// the pre-plan behavior exactly: LayerWise implies MemOpt (owners
	// precondition and broadcast every iteration), every other strategy
	// implies CommOpt (eigenbases are replicated, preconditioning is
	// local). This is the default.
	DistAuto DistMode = iota
	// CommOpt replicates every factor's eigenbasis to all ranks after each
	// decomposition update, so the per-iteration preconditioning runs
	// locally with zero communication — maximal memory, minimal traffic.
	CommOpt
	// MemOpt keeps each factor's eigenbasis on its owner (plus the layer's
	// single gradient worker when ownership is split); the gradient worker
	// computes the preconditioned gradient and the result is distributed to
	// the other ranks every iteration — minimal memory, per-iteration
	// traffic.
	MemOpt
	// Hybrid interpolates: each layer's gradient-worker set holds the
	// eigenbases and preconditions redundantly, sized by
	// Options.GradWorkerFrac (WithGradWorkerFrac). Larger sets spend memory
	// to shrink the per-iteration result broadcast.
	Hybrid
)

// String names the mode as the KAISA lineage does.
func (m DistMode) String() string {
	switch m {
	case DistAuto:
		return "auto"
	case CommOpt:
		return "COMM-OPT"
	case MemOpt:
		return "MEM-OPT"
	case Hybrid:
		return "HYBRID"
	}
	return "unknown"
}

// LayerPlan is one layer's slot of a resolved Plan.
type LayerPlan struct {
	// AOwner and GOwner are the ranks that eigendecompose (or invert) the
	// layer's A and G factors.
	AOwner, GOwner int
	// GradWorkers is the sorted set of ranks that hold both eigenbases and
	// compute the layer's preconditioned gradient. It always contains
	// GOwner (the designated root of the per-iteration result broadcast).
	GradWorkers []int
	// BcastMembers is the sorted per-iteration broadcast group: GOwner plus
	// every rank outside GradWorkers — the ranks that still need the
	// preconditioned gradient. len(BcastMembers) == 1 means no per-
	// iteration communication for this layer.
	BcastMembers []int
}

// Plan is a resolved distribution assignment: for every Kronecker factor an
// owner rank, and for every layer a gradient-worker set, built once per
// (strategy, mode, world) by the strategy's Planner and consumed uniformly
// by both step engines. Every rank builds the identical Plan from shared
// state, so no communication is needed to agree on it (Algorithm 1,
// line 9); elastic recovery re-plans by rebuilding it for the new world.
type Plan struct {
	// Strategy is the placement policy the owners came from.
	Strategy Strategy
	// Mode is the resolved distribution mode (never DistAuto).
	Mode DistMode
	// GradWorkerFrac is the resolved fraction of the world serving as
	// gradient workers per layer (1 under CommOpt, 1/World under MemOpt).
	GradWorkerFrac float64
	// World is the rank count the plan was built for.
	World int
	// Owners is the per-factor owner in placement order (A₀, G₀, A₁, …).
	Owners []int
	// Layers holds the per-layer views.
	Layers []LayerPlan
}

// gradWorkerCount resolves the per-layer gradient-worker set size.
func gradWorkerCount(mode DistMode, frac float64, world int) int {
	switch mode {
	case MemOpt:
		return 1
	case Hybrid:
		// ⌈f·world⌉, as WithGradWorkerFrac documents: at least the
		// requested fraction of the world serves as gradient workers.
		n := int(math.Ceil(frac * float64(world)))
		if n < 1 {
			n = 1
		}
		if n > world {
			n = world
		}
		return n
	default: // CommOpt
		return world
	}
}

// ResolveDistMode maps DistAuto onto the strategy's implied mode and
// returns every explicit mode unchanged.
func ResolveDistMode(mode DistMode, strategy Strategy) DistMode {
	if mode != DistAuto {
		return mode
	}
	if strategy == LayerWise {
		return MemOpt
	}
	return CommOpt
}

// BuildPlan resolves a distribution plan: owners from the strategy's
// registered Planner, gradient-worker sets from the mode (frac is consulted
// only under Hybrid). refs must be in placement order (FactorRefs). The
// result is a deterministic pure function of the arguments — identical on
// every rank, and across repeated calls.
func BuildPlan(strategy Strategy, mode DistMode, frac float64, refs []FactorRef, world int) *Plan {
	if world < 1 {
		world = 1
	}
	mode = ResolveDistMode(mode, strategy)
	owners := Assign(strategy, refs, world)
	count := gradWorkerCount(mode, frac, world)
	nLayers := len(refs) / 2
	p := &Plan{
		Strategy:       strategy,
		Mode:           mode,
		GradWorkerFrac: float64(count) / float64(world),
		World:          world,
		Owners:         owners,
		Layers:         make([]LayerPlan, nLayers),
	}
	for i := 0; i < nLayers; i++ {
		lp := &p.Layers[i]
		lp.AOwner = owners[2*i]
		lp.GOwner = owners[2*i+1]
		lp.GradWorkers = make([]int, count)
		for k := 0; k < count; k++ {
			lp.GradWorkers[k] = (lp.GOwner + k) % world
		}
		sort.Ints(lp.GradWorkers)
		lp.BcastMembers = append(lp.BcastMembers, lp.GOwner)
		for r := 0; r < world; r++ {
			if !containsSorted(lp.GradWorkers, r) {
				lp.BcastMembers = append(lp.BcastMembers, r)
			}
		}
		sort.Ints(lp.BcastMembers)
	}
	return p
}

// containsSorted reports membership in a sorted int slice.
func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// NumLayers returns the number of planned layers.
func (p *Plan) NumLayers() int { return len(p.Layers) }

// GradWorkersPerLayer returns the resolved gradient-worker set size.
func (p *Plan) GradWorkersPerLayer() int {
	if len(p.Layers) == 0 {
		return p.World
	}
	return len(p.Layers[0].GradWorkers)
}

// FullyReplicated reports whether every rank is a gradient worker for every
// layer — the COMM-OPT regime in which eigenbases are shared with everyone
// and the per-iteration step needs no communication.
func (p *Plan) FullyReplicated() bool { return p.GradWorkersPerLayer() == p.World }

// GradRoot returns the designated root of layer i's per-iteration result
// broadcast (its G-factor owner, always a gradient worker).
func (p *Plan) GradRoot(i int) int { return p.Layers[i].GOwner }

// IsGradWorker reports whether rank preconditions layer i's gradient.
func (p *Plan) IsGradWorker(i, rank int) bool {
	return containsSorted(p.Layers[i].GradWorkers, rank)
}

// Recipients returns the sorted rank set that must hold the given factor's
// decomposition: the layer's gradient workers plus the factor's owner.
func (p *Plan) Recipients(layer int, isG bool) []int {
	lp := &p.Layers[layer]
	owner := lp.AOwner
	if isG {
		owner = lp.GOwner
	}
	if containsSorted(lp.GradWorkers, owner) {
		return lp.GradWorkers
	}
	out := make([]int, 0, len(lp.GradWorkers)+1)
	out = append(out, lp.GradWorkers...)
	out = append(out, owner)
	sort.Ints(out)
	return out
}

// DecompElemsPerRank models the per-rank resident decomposition footprint
// of the plan in float elements: each factor of dimension n contributes
// n²+n (eigenbasis + eigenvalues) on every rank in its recipient set. This
// is the memory side of the MEM-OPT/COMM-OPT tradeoff; multiply by the
// element width (8 for the live float64 engines, 4 for the simulated FP32
// cluster) for bytes. refs must be the placement-order factor list the
// plan was built from.
func (p *Plan) DecompElemsPerRank(refs []FactorRef) []int64 {
	out := make([]int64, p.World)
	for i, f := range refs {
		layer := i / 2
		if layer >= len(p.Layers) {
			break
		}
		elems := int64(f.Dim)*int64(f.Dim) + int64(f.Dim)
		for _, r := range p.Recipients(layer, f.IsG) {
			out[r] += elems
		}
	}
	return out
}

// String summarizes the plan for logs and CLI banners.
func (p *Plan) String() string {
	return fmt.Sprintf("%s/%s: %d layers over %d ranks, %d gradient worker(s)/layer (f=%.2f)",
		PlannerFor(p.Strategy).Name(), p.Mode, len(p.Layers), p.World,
		p.GradWorkersPerLayer(), p.GradWorkerFrac)
}
