package kfac

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// planRefs builds a deterministic placement-order factor list.
func planRefs(layers int, seed int64) []FactorRef {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]FactorRef, 0, 2*layers)
	for i := 0; i < layers; i++ {
		refs = append(refs, FactorRef{Layer: i, IsG: false, Dim: 8 + rng.Intn(120)})
		refs = append(refs, FactorRef{Layer: i, IsG: true, Dim: 8 + rng.Intn(120)})
	}
	return refs
}

func TestBuildPlanDeterministicAcrossCallsAndWorlds(t *testing.T) {
	refs := planRefs(7, 3)
	for world := 1; world <= 8; world++ {
		for _, strategy := range []Strategy{RoundRobin, LayerWise, SizeGreedy} {
			for _, mode := range []DistMode{DistAuto, CommOpt, MemOpt, Hybrid} {
				first := BuildPlan(strategy, mode, 0.5, refs, world)
				for call := 0; call < 5; call++ {
					again := BuildPlan(strategy, mode, 0.5, refs, world)
					if !reflect.DeepEqual(first, again) {
						t.Fatalf("world %d %v/%v: plan differs across repeated builds", world, strategy, mode)
					}
				}
			}
		}
	}
}

func TestBuildPlanGradWorkerSets(t *testing.T) {
	refs := planRefs(5, 9)
	const world = 8
	cases := []struct {
		mode DistMode
		frac float64
		want int
	}{
		{CommOpt, 0, 8},
		{MemOpt, 0, 1},
		{Hybrid, 0.25, 2},
		{Hybrid, 0.5, 4},
		{Hybrid, 0.01, 1}, // clamped up
		{Hybrid, 2.0, 8},  // clamped down
	}
	for _, tc := range cases {
		p := BuildPlan(RoundRobin, tc.mode, tc.frac, refs, world)
		if got := p.GradWorkersPerLayer(); got != tc.want {
			t.Errorf("%v f=%v: %d gradient workers, want %d", tc.mode, tc.frac, got, tc.want)
		}
		for i, lp := range p.Layers {
			if !containsSorted(lp.GradWorkers, lp.GOwner) {
				t.Errorf("%v layer %d: GOwner %d not a gradient worker %v", tc.mode, i, lp.GOwner, lp.GradWorkers)
			}
			if !containsSorted(lp.BcastMembers, lp.GOwner) {
				t.Errorf("%v layer %d: GOwner missing from broadcast group", tc.mode, i)
			}
			// Broadcast group = root + exactly the non-workers.
			wantLen := 1 + world - len(lp.GradWorkers)
			if len(lp.BcastMembers) != wantLen {
				t.Errorf("%v layer %d: broadcast group size %d, want %d", tc.mode, i, len(lp.BcastMembers), wantLen)
			}
			for _, r := range lp.GradWorkers {
				if r < 0 || r >= world {
					t.Errorf("%v layer %d: worker %d outside world", tc.mode, i, r)
				}
				if r != lp.GOwner && containsSorted(lp.BcastMembers, r) {
					t.Errorf("%v layer %d: non-root gradient worker %d inside broadcast group", tc.mode, i, r)
				}
			}
		}
		if (p.GradWorkersPerLayer() == world) != p.FullyReplicated() {
			t.Errorf("%v: FullyReplicated inconsistent", tc.mode)
		}
	}
}

func TestResolveDistModeAuto(t *testing.T) {
	if got := ResolveDistMode(DistAuto, LayerWise); got != MemOpt {
		t.Errorf("auto+LayerWise = %v, want MemOpt", got)
	}
	if got := ResolveDistMode(DistAuto, RoundRobin); got != CommOpt {
		t.Errorf("auto+RoundRobin = %v, want CommOpt", got)
	}
	if got := ResolveDistMode(MemOpt, RoundRobin); got != MemOpt {
		t.Errorf("explicit mode was overridden: %v", got)
	}
}

func TestDistModeString(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []DistMode{DistAuto, CommOpt, MemOpt, Hybrid, DistMode(42)} {
		s := m.String()
		if s == "" || seen[s] {
			t.Errorf("mode %d: empty or duplicate name %q", m, s)
		}
		seen[s] = true
	}
}

func TestPlanRecipientsAndMemoryModel(t *testing.T) {
	refs := planRefs(6, 21)
	const world = 4
	comm := BuildPlan(RoundRobin, CommOpt, 0, refs, world)
	mem := BuildPlan(RoundRobin, MemOpt, 0, refs, world)

	commElems := comm.DecompElemsPerRank(refs)
	memElems := mem.DecompElemsPerRank(refs)
	// COMM-OPT replicates everything: all ranks identical, and the per-rank
	// footprint equals the full decomposition set.
	var total int64
	for _, f := range refs {
		total += int64(f.Dim)*int64(f.Dim) + int64(f.Dim)
	}
	for r := 0; r < world; r++ {
		if commElems[r] != total {
			t.Errorf("COMM-OPT rank %d holds %d elems, want full set %d", r, commElems[r], total)
		}
		if memElems[r] > commElems[r] {
			t.Errorf("MEM-OPT rank %d holds more than COMM-OPT: %d > %d", r, memElems[r], commElems[r])
		}
	}
	// MEM-OPT must strictly reduce the per-rank footprint at world > 1.
	var memMax int64
	for _, v := range memElems {
		if v > memMax {
			memMax = v
		}
	}
	if memMax >= total {
		t.Errorf("MEM-OPT peak %d did not shrink below full replication %d", memMax, total)
	}
	// Recipients: owner always included, and under MemOpt nothing beyond
	// owner + the single gradient worker.
	for i := range mem.Layers {
		aRec := mem.Recipients(i, false)
		if !containsSorted(aRec, mem.Layers[i].AOwner) {
			t.Errorf("layer %d: A owner missing from recipients %v", i, aRec)
		}
		if len(aRec) > 2 {
			t.Errorf("layer %d: MEM-OPT A recipients %v exceed owner+worker", i, aRec)
		}
	}
}

// TestSizeGreedyLoadBalanceProperty is the placement property gate: for
// randomized factor-size distributions with bounded cost spread and enough
// factors per worker, longest-processing-time-first keeps the busiest
// owner within 2× of the idlest. (LPT guarantees max − min ≤ max item
// cost; the dimension range [64,128] bounds that cost at 8× the smallest
// item, and ≥12 factors per worker keeps the mean well above it.)
func TestSizeGreedyLoadBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 2 + rng.Intn(7) // 2..8
		nf := 12 * workers
		refs := make([]FactorRef, nf)
		for i := range refs {
			refs[i] = FactorRef{Layer: i / 2, IsG: i%2 == 1, Dim: 64 + rng.Intn(65)}
		}
		assign := Assign(SizeGreedy, refs, workers)
		minL, maxL, _ := LoadStats(WorkerLoads(refs, assign, workers))
		if minL <= 0 {
			t.Logf("seed %d: idle worker under SizeGreedy (workers=%d)", seed, workers)
			return false
		}
		if maxL > 2*minL {
			t.Logf("seed %d: max/min = %.3f (workers=%d)", seed, maxL/minL, workers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
