package kfac

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

func TestPiCorrectionBalancedFactors(t *testing.T) {
	// Equal average traces → π = 1.
	a := tensor.Eye(4)
	g := tensor.Eye(7)
	if pi := PiCorrection(a, g); math.Abs(pi-1) > 1e-12 {
		t.Errorf("π = %v, want 1", pi)
	}
}

func TestPiCorrectionScalesWithTraceRatio(t *testing.T) {
	a := tensor.Eye(3)
	a.Scale(100)       // avg trace 100
	g := tensor.Eye(3) // avg trace 1
	if pi := PiCorrection(a, g); math.Abs(pi-10) > 1e-9 {
		t.Errorf("π = %v, want 10", pi)
	}
}

func TestPiCorrectionClamps(t *testing.T) {
	a := tensor.Eye(2)
	a.Scale(1e12)
	g := tensor.Eye(2)
	if pi := PiCorrection(a, g); pi != 1e3 {
		t.Errorf("π = %v, want clamp at 1e3", pi)
	}
	// Degenerate traces return 1.
	if pi := PiCorrection(tensor.New(2, 2), tensor.Eye(2)); pi != 1 {
		t.Errorf("π on zero-trace = %v, want 1", pi)
	}
	if pi := PiCorrection(tensor.New(0, 0), tensor.Eye(2)); pi != 1 {
		t.Errorf("π on empty = %v, want 1", pi)
	}
}

func TestPiDampingEigenMatchesFactoredInverse(t *testing.T) {
	// With π damping, the eigen path must equal
	// (G + √γ/π·I)⁻¹ ∇L (A + π√γ·I)⁻¹ exactly.
	rng := rand.New(rand.NewSource(1))
	out, in := 3, 4
	gBase := tensor.Randn(rng, 1, out, out)
	G := tensor.MatMulT1(gBase, gBase)
	aBase := tensor.Randn(rng, 1, in, in)
	A := tensor.MatMulT1(aBase, aBase)
	grad := tensor.Randn(rng, 1, out, in)
	gamma := 0.05

	egA, err := linalg.SymEig(A)
	if err != nil {
		t.Fatal(err)
	}
	egG, err := linalg.SymEig(G)
	if err != nil {
		t.Fatal(err)
	}
	p := &Preconditioner{opts: Options{Mode: EigenMode, Damping: gamma, PiDamping: true}}
	s := &layerState{eigA: egA, eigG: egG, pi: PiCorrection(A, G)}
	got := p.preconditionOne(s, grad)

	ga, gg := p.dampingSplit(s)
	invA, err := linalg.InverseDamped(A, ga)
	if err != nil {
		t.Fatal(err)
	}
	invG, err := linalg.InverseDamped(G, gg)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MatMul(tensor.MatMul(invG, grad), invA)
	if !got.Equal(want, 1e-8) {
		t.Error("π-damped eigen path != factored damped inverses")
	}
}

func TestPiDampingTrainingStep(t *testing.T) {
	net := buildTinyNet(31)
	p := NewFromOptions(net, nil, Options{PiDamping: true, FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runStep(net, 310, 8)
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	if net.Params()[0].Grad.HasNaN() {
		t.Error("π-damped step produced NaN")
	}
	for _, s := range p.states {
		if s.pi <= 0 {
			t.Error("π not computed for a layer")
		}
	}
}

func TestPiDampingInverseModeStep(t *testing.T) {
	net := buildTinyNet(32)
	p := NewFromOptions(net, nil, Options{Mode: InverseMode, PiDamping: true, FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runStep(net, 320, 8)
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	if net.Params()[0].Grad.HasNaN() {
		t.Error("π-damped inverse step produced NaN")
	}
}

func TestLMAdjustDirections(t *testing.T) {
	net := buildTinyNet(33)
	p := NewFromOptions(net, nil, Options{Damping: 0.01})
	// Good model fit → damping shrinks.
	p.LMAdjust(0.9, 0.5, 1e-6, 1)
	if p.Damping() != 0.005 {
		t.Errorf("damping after good rho = %v, want 0.005", p.Damping())
	}
	// Poor fit → grows.
	p.LMAdjust(0.1, 0.5, 1e-6, 1)
	if p.Damping() != 0.01 {
		t.Errorf("damping after poor rho = %v, want 0.01", p.Damping())
	}
	// Neutral zone → unchanged.
	p.LMAdjust(0.5, 0.5, 1e-6, 1)
	if p.Damping() != 0.01 {
		t.Errorf("damping after neutral rho = %v, want 0.01", p.Damping())
	}
}

func TestLMAdjustClamps(t *testing.T) {
	net := buildTinyNet(34)
	p := NewFromOptions(net, nil, Options{Damping: 1e-6})
	p.LMAdjust(0.9, 0.5, 1e-6, 1)
	if p.Damping() != 1e-6 {
		t.Errorf("min clamp failed: %v", p.Damping())
	}
	p.SetDamping(0.9)
	p.LMAdjust(0.1, 0.5, 1e-6, 1)
	if p.Damping() != 1 {
		t.Errorf("max clamp failed: %v", p.Damping())
	}
	// Invalid omega is a no-op.
	p.SetDamping(0.3)
	p.LMAdjust(0.9, 1.5, 1e-6, 1)
	if p.Damping() != 0.3 {
		t.Error("invalid omega should not change damping")
	}
}

func TestStageStatsAccumulate(t *testing.T) {
	net := buildTinyNet(35)
	p := NewFromOptions(net, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 2})
	for i := 0; i < 4; i++ {
		runStep(net, int64(400+i), 4)
		if err := p.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats().Snapshot()
	if st.Steps != 4 {
		t.Errorf("Steps = %d, want 4", st.Steps)
	}
	if st.FactorUpdates != 4 {
		t.Errorf("FactorUpdates = %d, want 4", st.FactorUpdates)
	}
	if st.EigUpdates != 2 { // iters 0 and 2
		t.Errorf("EigUpdates = %d, want 2", st.EigUpdates)
	}
	if st.FactorCompute <= 0 || st.EigCompute <= 0 || st.Precondition <= 0 {
		t.Error("stage durations not recorded")
	}
	// Single process: no communication time.
	if st.FactorComm != 0 || st.EigComm != 0 {
		t.Error("unexpected comm time in single-process run")
	}
	if p.Stats().String() == "" {
		t.Error("empty stats string")
	}
	fc, fm := p.Stats().PerFactorUpdate()
	if fc <= 0 || fm != 0 {
		t.Errorf("PerFactorUpdate = %v, %v", fc, fm)
	}
	ec, em := p.Stats().PerEigUpdate()
	if ec <= 0 || em != 0 {
		t.Errorf("PerEigUpdate = %v, %v", ec, em)
	}
}

func TestStageStatsEmpty(t *testing.T) {
	var s StageStats
	if c, m := s.PerFactorUpdate(); c != 0 || m != 0 {
		t.Error("empty PerFactorUpdate should be zero")
	}
	if c, m := s.PerEigUpdate(); c != 0 || m != 0 {
		t.Error("empty PerEigUpdate should be zero")
	}
	s.add(&s.Precondition, time.Millisecond)
	if s.Snapshot().Precondition != time.Millisecond {
		t.Error("add/Snapshot mismatch")
	}
}
