package kfac

import "repro/internal/comm"

// Option configures a preconditioner at construction:
//
//	prec := kfac.New(net, c,
//		kfac.WithDamping(1e-3),
//		kfac.WithEngine(kfac.EnginePipelined),
//		kfac.WithStrategy(kfac.SizeGreedy))
//
// Options are applied in argument order over a zero Options value, later
// options overriding earlier ones; the paper defaults of Options.fillDefaults
// fill whatever remains unset. The Options struct is kept as the resolved
// form — Build materializes an option list into one, and NewFromOptions
// constructs a preconditioner directly from a resolved struct (the trainer's
// Config path and tests use it).
type Option func(*Options)

// Build resolves an option list into the Options struct form. Zero-valued
// fields are later replaced by the paper defaults inside New/NewFromOptions.
func Build(opts ...Option) Options {
	var o Options
	for _, op := range opts {
		op(&o)
	}
	return o
}

// WithOptions merges a pre-resolved Options struct wholesale; combine it
// with later options to tweak individual fields of a shared base.
func WithOptions(o Options) Option { return func(dst *Options) { *dst = o } }

// WithMode selects how (F̂+γI)⁻¹ is applied (default EigenMode).
func WithMode(m Mode) Option { return func(o *Options) { o.Mode = m } }

// WithStrategy selects the factor→worker placement strategy (default
// RoundRobin, the paper's K-FAC-opt).
func WithStrategy(s Strategy) Option { return func(o *Options) { o.Strategy = s } }

// WithDistMode selects the memory/communication tradeoff of the
// distribution plan: CommOpt replicates eigenbases everywhere (local
// preconditioning, zero per-iteration traffic), MemOpt keeps them on
// owners and distributes preconditioned gradients each iteration, Hybrid
// interpolates via WithGradWorkerFrac. Default DistAuto derives the mode
// from the strategy (LayerWise → MemOpt, else CommOpt).
func WithDistMode(m DistMode) Option { return func(o *Options) { o.DistMode = m } }

// WithGradWorkerFrac selects Hybrid distribution with each layer's
// gradient-worker set sized to ⌈f·world⌉ ranks (clamped to [1, world]):
// f→0 approaches MemOpt, f=1 is CommOpt. The knob that trades per-rank
// eigenbasis memory against per-iteration broadcast traffic.
func WithGradWorkerFrac(f float64) Option {
	return func(o *Options) {
		o.DistMode = Hybrid
		o.GradWorkerFrac = f
	}
}

// WithGroupSize routes the factor allreduce and the trainer's gradient
// exchange through comm.HierarchicalAllreduceMean with this many
// consecutive ranks per group (≥ 2; 0 keeps the flat ring). Results agree
// with the flat ring to rounding — exactly on integer-representable sums.
func WithGroupSize(n int) Option { return func(o *Options) { o.GroupSize = n } }

// WithDamping sets the Tikhonov regularizer γ (default 0.001).
func WithDamping(g float64) Option { return func(o *Options) { o.Damping = g } }

// WithFactorDecay sets the running-average coefficient ξ (default 0.95).
func WithFactorDecay(d float64) Option { return func(o *Options) { o.FactorDecay = d } }

// WithKLClip sets the κ constant of the gradient-scaling Equation 18
// (default 0.001). Negative disables clipping.
func WithKLClip(k float64) Option { return func(o *Options) { o.KLClip = k } }

// WithFactorUpdateFreq sets the interval in iterations between factor
// recomputation + allreduce (default 10).
func WithFactorUpdateFreq(n int) Option { return func(o *Options) { o.FactorUpdateFreq = n } }

// WithInvUpdateFreq sets the paper's kfac-update-freq: the interval between
// eigendecomposition (or inverse) updates (default 100).
func WithInvUpdateFreq(n int) Option { return func(o *Options) { o.InvUpdateFreq = n } }

// WithFusionBytes bounds the factor-allreduce fusion buffer (default
// comm.DefaultFusionBytes).
func WithFusionBytes(b int) Option { return func(o *Options) { o.FusionBytes = b } }

// WithPiDamping enables the π-corrected factored damping split of
// Martens & Grosse (off by default, matching the paper).
func WithPiDamping() Option { return func(o *Options) { o.PiDamping = true } }

// WithSkipLayers lists layer names to leave to the first-order optimizer.
func WithSkipLayers(names ...string) Option {
	return func(o *Options) { o.SkipLayers = append(o.SkipLayers, names...) }
}

// WithMaxFactorDim excludes layers whose A or G factor would exceed this
// dimension (default 0 = no limit).
func WithMaxFactorDim(d int) Option { return func(o *Options) { o.MaxFactorDim = d } }

// WithEngine selects the Step execution engine (default EngineSync;
// EnginePipelined overlaps compute, communication, and decomposition with
// bit-identical results).
func WithEngine(e Engine) Option { return func(o *Options) { o.Engine = e } }

// WithPipelineWorkers bounds the pipelined engine's compute pool
// (default 0 = GOMAXPROCS). Ignored by EngineSync.
func WithPipelineWorkers(n int) Option { return func(o *Options) { o.PipelineWorkers = n } }

// WithCompression applies a lossy codec to the factor allreduce and the
// trainer's gradient exchange, wrapped in error-feedback residual
// accumulation: each rank compensates its payload with the error its
// codec previously discarded, keeping sparsifiers like comm.TopKCodec
// convergence-safe (the compensated stream telescopes — see
// comm.ErrorFeedback). Must be identical on every rank. nil restores
// exact transmission.
func WithCompression(c comm.Codec) Option {
	return func(o *Options) {
		o.Compression = c
		o.NoErrorFeedback = false
	}
}

// WithBareCompression applies the codec WITHOUT error feedback — the
// biased estimator. Kept for A/B experiments: the convergence-safety
// suite uses it to demonstrate bare Top-K stalling where the compensated
// form tracks the uncompressed loss.
func WithBareCompression(c comm.Codec) Option {
	return func(o *Options) {
		o.Compression = c
		o.NoErrorFeedback = true
	}
}

// WithAutotune enables the bandwidth-adaptive controller: at factor-update
// boundaries the ranks agree on a (bandwidth, drop-rate) estimate through
// a consensus allreduce and re-select {codec, FusionBytes, GroupSize} from
// the policy table, overriding the static options from the first decision
// on. The zero AutotuneConfig selects DefaultTunePolicy deciding at every
// factor update. Decisions land in StageStats.TuneDecisions.
func WithAutotune(cfg AutotuneConfig) Option {
	return func(o *Options) { o.Autotune = &cfg }
}

// WithAutoPlanner replaces the legacy two-case DistAuto rule with the
// cost-model planner: at plan-build time the candidate
// (DistMode, GradWorkerFrac, GroupSize) grid is priced by cfg.Model,
// candidates over cfg.MemoryBudgetBytes are rejected, and the cheapest
// survivor is selected — deterministically, as a pure function of the
// BuildPlan inputs, so every rank picks the same configuration without
// communication. Only consulted while DistMode is DistAuto (an explicit
// WithDistMode always wins); with a nil Model the legacy rule applies
// bit-identically. The canonical model is simulate.PlanModel.
func WithAutoPlanner(cfg AutoPlannerConfig) Option {
	return func(o *Options) { o.AutoPlanner = &cfg }
}
