package kfac

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
)

// Bandwidth-adaptive communication autotuning (ROADMAP item 4). The
// paper's central tradeoff — communication cost vs statistical efficiency
// of the second-order update — is static in PR 3's codecs: somebody has
// to guess the link quality at launch. The autotuner closes the loop at
// runtime: each factor-update interval every rank estimates its factor-
// path bandwidth from the stage profile (wire bytes over measured
// allreduce time) and samples the transport's DeliveryMetrics for the
// drop rate, then the ranks agree on one view of the link through a tiny
// consensus allreduce — the same trick the trainer uses for cancellation:
// the ring allreduce's rank-ordered arithmetic makes the mean
// bit-identical on every rank, so thresholding it yields the same policy
// level everywhere, and every rank switches {codec, FusionBytes,
// GroupSize} at the same step boundary with no extra coordination
// protocol. Decisions are recorded in StageStats.TuneDecisions; the
// determinism suite asserts the sequences are deep-equal across ranks
// under chaos schedules.

// TuneLevel is one row of the autotune policy table: the communication
// configuration to run when the consensus bandwidth estimate is at least
// MinBandwidthBps.
type TuneLevel struct {
	// Name labels the level in decisions and logs.
	Name string
	// MinBandwidthBps is the lower edge of this level's bandwidth band;
	// levels must be ordered by strictly descending MinBandwidthBps, and
	// the last level should use 0 as the catch-all.
	MinBandwidthBps float64
	// Codec compresses factor and gradient payloads (nil = exact).
	Codec comm.Codec
	// FusionBytes bounds the fusion buffer at this level.
	FusionBytes int
	// GroupSize, when ≥ 2, routes exact chunks through the hierarchical
	// allreduce (ignored for compressed chunks, which ride an allgather).
	GroupSize int
}

// TunePolicy is the ordered level table the autotuner selects from.
type TunePolicy struct {
	// Levels in descending MinBandwidthBps order.
	Levels []TuneLevel
	// DropPenalty: a consensus drop rate above this threshold biases the
	// selection one level down (toward more compression) — small messages
	// ride retries better. 0 selects the default 0.02; negative disables.
	DropPenalty float64
}

// DefaultTunePolicy returns the built-in four-level table: exact/flat on
// fast links, exact/hierarchical with a smaller fusion buffer in the
// middle band, float16 below that, and Top-K 10% + error feedback on
// badly constrained links.
func DefaultTunePolicy() TunePolicy {
	return TunePolicy{
		Levels: []TuneLevel{
			{Name: "exact", MinBandwidthBps: 64 << 20, FusionBytes: comm.DefaultFusionBytes},
			{Name: "exact-hier", MinBandwidthBps: 16 << 20, FusionBytes: 4 << 20, GroupSize: 2},
			{Name: "float16", MinBandwidthBps: 4 << 20, Codec: comm.Float16Codec{}, FusionBytes: 4 << 20},
			{Name: "topk10", MinBandwidthBps: 0, Codec: comm.TopKCodec{FractionK: 0.10}, FusionBytes: 1 << 20},
		},
		DropPenalty: 0.02,
	}
}

// Pick returns the index of the level for a consensus (bandwidth, drop)
// estimate: the first level whose band contains the bandwidth, pushed one
// level down when the drop rate exceeds the penalty threshold. A pure
// function — every rank calling it with the same consensus inputs picks
// the same level.
func (tp TunePolicy) Pick(bwBps, dropRate float64) int {
	pick := len(tp.Levels) - 1
	for i, lv := range tp.Levels {
		if bwBps >= lv.MinBandwidthBps {
			pick = i
			break
		}
	}
	pen := tp.DropPenalty
	if pen == 0 {
		pen = 0.02
	}
	if pen > 0 && dropRate > pen && pick < len(tp.Levels)-1 {
		pick++
	}
	return pick
}

// AutotuneConfig configures the runtime controller (kfac.WithAutotune).
type AutotuneConfig struct {
	// Policy is the level table (zero value selects DefaultTunePolicy).
	Policy TunePolicy
	// Interval is the number of factor updates between consensus
	// decisions (≤ 0 selects 1: decide at every factor-update boundary).
	Interval int
}

// TuneDecision is one consensus decision, recorded in StageStats in step
// order. All float fields are consensus outputs — bit-identical across
// ranks by construction, which the determinism tests assert literally.
type TuneDecision struct {
	// Step is the zero-based optimizer step the decision was made at; the
	// selected configuration applies from this step's factor update on.
	Step int
	// BandwidthBps is the consensus mean of the ranks' local factor-path
	// bandwidth estimates.
	BandwidthBps float64
	// DropRate is the consensus mean of the ranks' transport drop rates
	// (0 when the transport keeps no metrics).
	DropRate float64
	// Level indexes the policy table; Name/Codec/FusionBytes/GroupSize
	// denormalize the selected row ("" codec = exact).
	Level       int
	Name        string
	Codec       string
	FusionBytes int
	GroupSize   int
	// Changed marks decisions that selected a different level than the
	// previous decision.
	Changed bool
}

// TuneState is the effective communication configuration after static
// options and any autotune decisions; the trainer queries it every
// iteration to configure its gradient exchange identically to the factor
// path.
type TuneState struct {
	// Codec is the effective payload codec (nil = exact).
	Codec comm.Codec
	// FusionBytes is the effective fusion-buffer bound.
	FusionBytes int
	// GroupSize is the effective hierarchical group size (0 = flat).
	GroupSize int
	// NoErrorFeedback disables residual accumulation (Options A/B knob).
	NoErrorFeedback bool
	// Tuned reports whether an autotune decision is in force — false means
	// the fields above mirror the static Options (callers with their own
	// static configuration, like the trainer's FusionBytes, keep it until
	// the first decision).
	Tuned bool
}

// tuner is the controller's mutable runtime state. It lives on the
// preconditioner and is only touched from Step (single-goroutine).
type tuner struct {
	policy    TunePolicy
	interval  int
	level     int // -1 until the first decision: static Options apply
	sinceLast int
	lastBW    float64

	prevComm    time.Duration
	prevUpdates int
	prevMetrics comm.DeliveryMetrics
	hasMetrics  bool
}

func newTuner(cfg AutotuneConfig) *tuner {
	t := &tuner{policy: cfg.Policy, interval: cfg.Interval, level: -1, lastBW: math.Inf(1)}
	if len(t.policy.Levels) == 0 {
		t.policy = DefaultTunePolicy()
	}
	if t.interval < 1 {
		t.interval = 1
	}
	return t
}

// effCodec returns the effective payload codec: the tuned level's once a
// decision exists, the static option before that.
func (p *Preconditioner) effCodec() comm.Codec {
	if p.tuner != nil && p.tuner.level >= 0 {
		return p.tuner.policy.Levels[p.tuner.level].Codec
	}
	return p.opts.Compression
}

// effFusionBytes returns the effective fusion-buffer bound.
func (p *Preconditioner) effFusionBytes() int {
	if p.tuner != nil && p.tuner.level >= 0 {
		return p.tuner.policy.Levels[p.tuner.level].FusionBytes
	}
	return p.opts.FusionBytes
}

// effGroupSize returns the effective hierarchical group size: an autotune
// decision wins, then an explicit WithGroupSize, then the auto-planner's
// chosen group size (0 everywhere keeps the flat ring).
func (p *Preconditioner) effGroupSize() int {
	if p.tuner != nil && p.tuner.level >= 0 {
		return p.tuner.policy.Levels[p.tuner.level].GroupSize
	}
	if p.opts.GroupSize != 0 {
		return p.opts.GroupSize
	}
	return p.plannedGroupSize
}

// Tuning returns the effective communication configuration. The trainer
// calls it once per iteration, after Step, so a decision made at step k
// configures the gradient exchange from step k+1 — the same boundary on
// every rank.
func (p *Preconditioner) Tuning() TuneState {
	return TuneState{
		Codec:           p.effCodec(),
		FusionBytes:     p.effFusionBytes(),
		GroupSize:       p.effGroupSize(),
		NoErrorFeedback: p.opts.NoErrorFeedback,
		Tuned:           p.tuner != nil && p.tuner.level >= 0,
	}
}

// factorFuser builds the factor-allreduce fuser with the effective
// communication settings, attaching the preconditioner's error-feedback
// accumulator (or the bare codec under Options.NoErrorFeedback). Both
// step engines build their fusers here, so compression and autotuning
// apply uniformly across engines and DistModes.
func (p *Preconditioner) factorFuser() *comm.Fuser {
	fu := comm.NewFuser(p.comm, p.effFusionBytes())
	fu.SetGroupSize(p.effGroupSize())
	if codec := p.effCodec(); codec != nil {
		if p.opts.NoErrorFeedback {
			fu.SetCodec(codec)
		} else {
			p.factorEF.SetCodec(codec)
			fu.SetErrorFeedback(p.factorEF)
		}
	}
	return fu
}

// factorWireBytesPerUpdate models the bytes this rank puts on the wire
// for one factor update under the current effective settings: a flat ring
// allreduce sends 2(p−1)/p of the payload, a compressed allgather
// circulates each encoded block p−1 times. The model is shared by every
// rank (a pure function of plan state), so only the measured time side of
// the bandwidth estimate differs per rank — and the consensus mean
// absorbs that.
func (p *Preconditioner) factorWireBytesPerUpdate() float64 {
	var n int
	for _, s := range p.states {
		da, dg := FactorDims(s.layer)
		n += da*da + dg*dg
	}
	w := float64(p.comm.Size())
	if codec := p.effCodec(); codec != nil {
		return 8 * float64(codec.CompressedLen(n)) * (w - 1)
	}
	return 8 * float64(n) * 2 * (w - 1) / w
}

// autotune runs one controller step: estimate locally, agree by
// consensus, pick a level, record the decision. Called from Step at
// factor-update boundaries (after the first), before either engine issues
// its collectives — the same schedule point on every rank.
func (p *Preconditioner) autotune(iter int) error {
	t := p.tuner
	t.sinceLast++
	if t.sinceLast < t.interval {
		return nil
	}
	t.sinceLast = 0

	snap := p.stats.Snapshot()
	commDelta := snap.FactorComm - t.prevComm
	updates := snap.FactorUpdates - t.prevUpdates
	t.prevComm, t.prevUpdates = snap.FactorComm, snap.FactorUpdates
	bw := t.lastBW
	if commDelta > 0 && updates > 0 {
		bw = p.factorWireBytesPerUpdate() * float64(updates) / commDelta.Seconds()
	}
	drop := 0.0
	if m, ok := p.comm.TransportMetrics(); ok {
		if t.hasMetrics {
			sentD := float64(m.Sent - t.prevMetrics.Sent)
			dropD := float64(m.Dropped - t.prevMetrics.Dropped)
			if sentD+dropD > 0 {
				drop = dropD / (sentD + dropD)
			}
		}
		t.prevMetrics, t.hasMetrics = m, true
	}

	// Consensus: a two-word mean allreduce. The ring's rank-ordered
	// arithmetic produces bit-identical sums everywhere, so every rank
	// thresholds the same floats and picks the same level — no separate
	// agreement protocol (the PR 2 cancellation trick).
	est := []float64{bw, drop}
	if err := p.comm.AllreduceMean(est); err != nil {
		return fmt.Errorf("kfac: autotune consensus: %w", err)
	}
	t.lastBW = est[0]
	level := t.policy.Pick(est[0], est[1])
	changed := level != t.level
	t.level = level
	lv := t.policy.Levels[level]
	codecName := ""
	if lv.Codec != nil {
		codecName = lv.Codec.Name()
	}
	p.stats.recordTune(TuneDecision{
		Step:         iter,
		BandwidthBps: est[0],
		DropRate:     est[1],
		Level:        level,
		Name:         lv.Name,
		Codec:        codecName,
		FusionBytes:  lv.FusionBytes,
		GroupSize:    lv.GroupSize,
		Changed:      changed,
	})
	return nil
}
