package kfac

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// useReferenceCovKernel swaps the covariance kernel to the general-matmul
// reference path and returns a restore func. Tests using it must not run in
// parallel (the hook is package state).
func useReferenceCovKernel() func() {
	old := covKernel
	covKernel = func(dst, a *tensor.Tensor) { tensor.MatMulT1Into(dst, a, a) }
	return func() { covKernel = old }
}

// TestKFACStepSteadyStateZeroAllocs is the allocation guard of the
// acceptance criteria: once the factor and decomposition updates have run
// and the per-layer workspaces have settled, a stale-decomposition Step —
// the common steady-state iteration — must perform zero heap allocations.
func TestKFACStepSteadyStateZeroAllocs(t *testing.T) {
	net := buildTinyNet(77)
	prec := NewFromOptions(net, nil, Options{
		FactorUpdateFreq: 1 << 30, InvUpdateFreq: 1 << 30, Damping: 1e-3,
	})
	runStep(net, 300, 4)
	// First step computes factors + decompositions; two more settle every
	// Ensure workspace at its steady-state size.
	for i := 0; i < 3; i++ {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocated %.1f times per run, want 0", allocs)
	}
}

// TestKFACStepSteadyStateZeroAllocsInverseMode is the same guard for the
// Table I explicit-inverse ablation path.
func TestKFACStepSteadyStateZeroAllocsInverseMode(t *testing.T) {
	net := buildTinyNet(78)
	prec := NewFromOptions(net, nil, Options{
		Mode: InverseMode, FactorUpdateFreq: 1 << 30, InvUpdateFreq: 1 << 30, Damping: 1e-3,
	})
	runStep(net, 301, 4)
	for i := 0; i < 3; i++ {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state inverse-mode Step allocated %.1f times per run, want 0", allocs)
	}
}

// TestKFACStepSteadyStateZeroAllocsPipelined guards the pipelined engine's
// steady-state path: stale steps bypass the update pipeline entirely and
// fan preconditioning out with the zero-allocation ForEach dispatch.
func TestKFACStepSteadyStateZeroAllocsPipelined(t *testing.T) {
	net := buildTinyNet(79)
	prec := NewFromOptions(net, nil, Options{
		Engine: EnginePipelined, FactorUpdateFreq: 1 << 30, InvUpdateFreq: 1 << 30, Damping: 1e-3,
	})
	defer prec.Close()
	runStep(net, 302, 4)
	for i := 0; i < 3; i++ {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state pipelined Step allocated %.1f times per run, want 0", allocs)
	}
}

// TestDecomposeFailurePreservesPreviousEigen: the in-place decomposition
// refresh double-buffers, so a failing eigensolve must leave the last good
// decomposition in place for the stale-preconditioning path.
func TestDecomposeFailurePreservesPreviousEigen(t *testing.T) {
	net := buildTinyNet(80)
	p := NewFromOptions(net, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runStep(net, 400, 4)
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	s := p.states[0]
	q0 := s.eigA.Q.Clone()
	s.A.Data[0] = math.NaN()
	if err := p.decomposeA(s); err == nil {
		t.Fatal("decomposeA accepted a NaN factor")
	}
	if !s.eigA.Q.Equal(q0, 0) {
		t.Error("failed decomposition clobbered the previous eigenbasis")
	}
}

// worldStepTrace runs stepTrace on every rank of a p-rank in-process world
// and returns the per-rank final combined gradients.
func worldStepTrace(t *testing.T, p int, opts Options, steps int) [][]*tensor.Tensor {
	t.Helper()
	if p == 1 {
		return [][]*tensor.Tensor{stepTrace(t, nil, opts, steps)}
	}
	fab := comm.NewInprocFabric(p)
	out := make([][]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out[r] = stepTrace(t, comm.NewCommunicator(fab.Endpoint(r)), opts, steps)
		}(r)
	}
	wg.Wait()
	return out
}

// TestCovKernelBitIdenticalAcrossWorlds is the acceptance gate for the
// kernel swap: same-seed runs through the blocked symmetric-multiply
// covariance kernel must leave every rank's preconditioned gradients
// bit-identical to runs through the reference general-matmul kernel, for
// every world size 1–8 (exact comparison, both step engines exercised via
// the factor path both engines share).
func TestCovKernelBitIdenticalAcrossWorlds(t *testing.T) {
	opts := Options{FactorUpdateFreq: 1, InvUpdateFreq: 2}
	const steps = 3
	for p := 1; p <= 8; p++ {
		restore := useReferenceCovKernel()
		want := worldStepTrace(t, p, opts, steps)
		restore()
		got := worldStepTrace(t, p, opts, steps)
		for r := range want {
			if len(want[r]) == 0 {
				t.Fatalf("world %d: empty trace", p)
			}
			for i := range want[r] {
				if !want[r][i].Equal(got[r][i], 0) {
					t.Errorf("world %d rank %d layer %d: blocked kernel differs from reference (exact comparison)", p, r, i)
				}
			}
		}
	}
}
