package kfac

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/comm"
	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Mode selects how (F̂+γI)⁻¹ is applied to the gradient.
type Mode int

const (
	// EigenMode preconditions via the eigendecomposition expansion
	// (Equations 13–15) — the paper's default, chosen in §IV-A because it
	// preserves convergence at large batch sizes.
	EigenMode Mode = iota
	// InverseMode preconditions via explicit damped inverses
	// (Equation 11) — kept for the Table I ablation.
	InverseMode
)

// String names the mode as in Table I.
func (m Mode) String() string {
	if m == InverseMode {
		return "K-FAC w/ Inverse"
	}
	return "K-FAC w/ Eigen-decomp."
}

// Options configures the preconditioner. Zero values select the paper's
// defaults where one exists.
type Options struct {
	Mode     Mode
	Strategy Strategy
	// DistMode selects the memory/communication tradeoff of the resolved
	// distribution plan (default DistAuto: LayerWise implies MemOpt, every
	// other strategy CommOpt — the pre-plan behavior).
	DistMode DistMode
	// GradWorkerFrac sizes each layer's gradient-worker set under
	// DistMode == Hybrid as a fraction of the world (clamped to at least
	// one worker). Ignored by the other modes.
	GradWorkerFrac float64
	// GroupSize, when ≥ 2, routes the factor allreduce (and the trainer's
	// gradient exchange) through the two-level hierarchical allreduce with
	// this many consecutive ranks per group — modeling fast intra-node
	// links. 0 keeps the flat ring.
	GroupSize int
	// Damping is the Tikhonov regularizer γ (paper: 0.001 for ImageNet).
	Damping float64
	// FactorDecay is the running-average coefficient ξ in Equations 16–17
	// (typical range [0.9, 1); default 0.95).
	FactorDecay float64
	// KLClip is the κ constant of the gradient-scaling Equation 18
	// (default 0.001). Negative disables clipping.
	KLClip float64
	// FactorUpdateFreq is the interval in iterations between factor
	// recomputation + allreduce (default 10). The paper observes factors
	// can be updated 10× more frequently than the decompositions.
	FactorUpdateFreq int
	// InvUpdateFreq is the paper's kfac-update-freq: the interval between
	// eigendecomposition (or inverse) updates (default 100).
	InvUpdateFreq int
	// FusionBytes bounds the factor-allreduce fusion buffer
	// (default comm.DefaultFusionBytes).
	FusionBytes int
	// PiDamping enables the π-corrected factored damping split of
	// Martens & Grosse (§6.3): (A+π√γI)⊗(G+√γ/π·I) instead of the
	// uniform γ on the combined eigenvalue product. Off by default,
	// matching the paper.
	PiDamping bool
	// SkipLayers lists layer names to leave to the first-order optimizer
	// (the reference implementation's skip_layers option).
	SkipLayers []string
	// MaxFactorDim excludes layers whose A or G factor would exceed this
	// dimension (0 = no limit) — a memory/time guard for very wide layers.
	MaxFactorDim int
	// Engine selects how Step executes its stages: EngineSync (default)
	// runs them strictly in sequence; EnginePipelined overlaps per-layer
	// factor computation, fused async allreduce, eigendecomposition, and a
	// streamed per-layer allgather. Both engines are numerically identical.
	Engine Engine
	// PipelineWorkers bounds the pipelined engine's compute pool
	// (0 = GOMAXPROCS). Ignored by EngineSync.
	PipelineWorkers int
	// Precision selects the arithmetic width of the covariance and
	// preconditioning kernels (default F64). F32 stores and multiplies in
	// float32 with float64 accumulation; running averages, decompositions,
	// communication, and checkpoints stay float64 regardless (see
	// precision.go).
	Precision Precision
	// Compression applies a lossy codec to the factor allreduce and the
	// trainer's gradient exchange (nil = exact), wrapped in error-feedback
	// residual accumulation unless NoErrorFeedback is set. Must be
	// identical on every rank. SymEigInto symmetrizes its input, so
	// sparsified factor averages stay safe to decompose.
	Compression comm.Codec
	// NoErrorFeedback strips the residual accumulator from Compression —
	// the biased estimator, kept so the convergence-safety suite can
	// demonstrate why error feedback is not optional for sparsifiers.
	NoErrorFeedback bool
	// Autotune, when non-nil, enables the bandwidth-adaptive controller:
	// codec/FusionBytes/GroupSize are re-selected from the policy table at
	// factor-update boundaries via a consensus collective, overriding the
	// static Compression/FusionBytes/GroupSize fields from the first
	// decision on. See autotune.go.
	Autotune *AutotuneConfig
	// EigSolver selects the EigenMode eigensolver (default EigBlocked, the
	// blocked multi-threaded solver with per-factor worker teams;
	// EigSerial restores the single-threaded tred2/tql2 oracle). The two
	// agree to round-off and are each bitwise deterministic.
	EigSolver EigSolver
	// AutoPlanner, when non-nil with a Model, resolves DistMode == DistAuto
	// through the cost-model planner instead of the legacy two-case rule:
	// candidate (mode, frac, group-size) configurations are enumerated at
	// plan-build time, filtered by the per-worker memory budget, and the
	// model-cheapest one wins — deterministically on every rank. Explicit
	// DistMode settings always take precedence; a nil Model keeps the
	// legacy rule bit-identical. See planner.go.
	AutoPlanner *AutoPlannerConfig
}

func (o *Options) fillDefaults() {
	if o.Damping == 0 {
		o.Damping = 0.001
	}
	if o.FactorDecay == 0 {
		o.FactorDecay = 0.95
	}
	if o.KLClip == 0 {
		o.KLClip = 0.001
	}
	if o.FactorUpdateFreq == 0 {
		o.FactorUpdateFreq = 10
	}
	if o.InvUpdateFreq == 0 {
		o.InvUpdateFreq = 100
	}
}

// layerState carries the per-layer K-FAC quantities.
type layerState struct {
	layer nn.KFACCapturable
	// Running-average Kronecker factors (Equations 16–17).
	A, G *tensor.Tensor
	// Eigen decompositions (EigenMode).
	eigA, eigG *linalg.Eigen
	// Damped inverses (InverseMode).
	invA, invG *tensor.Tensor
	// Owner ranks for the A and G factors, mirrored from the active Plan
	// (equal under LayerWise).
	aWorker, gWorker int
	// Intra-factor eigensolver team sizes, assigned by computeEigTeams
	// from the plan's per-rank decomposition loads (1 = serial-in-parallel;
	// purely a performance knob, results are team-independent).
	aTeam, gTeam int
	// Plan-scoped sub-communicators, rebuilt by replan; nil when the plan
	// is fully replicated or the run is single-process. aRecvGroup and
	// gRecvGroup carry a factor's decomposition from its owner to the
	// layer's gradient workers; pcGroup carries the preconditioned gradient
	// from the designated root to the ranks that did not compute it.
	aRecvGroup, gRecvGroup, pcGroup *comm.Group
	// π correction for factored damping (1 when disabled); recomputed at
	// every decomposition update from the averaged factors, so it is
	// identical on every rank without communication.
	pi float64

	// Reused workspaces. Together with the Eigen in-place refresh
	// (linalg.SymEigInto) they make the steady-state Step path — combined
	// gradient, preconditioning products, KL clip — allocation-free; see
	// TestKFACStepSteadyStateZeroAllocs.
	covA, covG *tensor.Tensor // covariance scratch for one factor update
	sample     *tensor.Tensor // bias-augmented activation sample matrix
	gradBuf    *tensor.Tensor // combined gradient [dg, da]
	wA, wB     *tensor.Tensor // preconditioning intermediates [dg, da]
	pcBuf      *tensor.Tensor // preconditioned gradient [dg, da]
	// Decomposition spares: SymEigInto refreshes into the spare, which is
	// swapped with eigA/eigG only on success, so a convergence failure
	// never clobbers the last good decomposition (the stale path keeps
	// preconditioning with it). Storage still recycles: the pair
	// ping-pongs between the two buffers.
	eigSpareA, eigSpareG *linalg.Eigen

	// Float32 mirrors and workspaces; nil unless Options.Precision == F32.
	f32 *layerF32
}

// Preconditioner is the distributed K-FAC gradient preconditioner
// (Algorithm 1). Create it once over a model; call Step after the backward
// pass and gradient allreduce of each iteration, before the optimizer step,
// exactly as in the paper's Listing 1.
type Preconditioner struct {
	comm   *comm.Communicator // nil means single-process
	opts   Options
	states []*layerState
	plan   *Plan // resolved distribution plan (rebuilt by replan)
	step   int
	stats  StageStats
	pool   *sched.Pool // lazily created by the pipelined engine

	// factorEF persists factor-path compression residuals across steps;
	// tuner is the autotune controller state (nil when disabled).
	factorEF *comm.ErrorFeedback
	tuner    *tuner

	// decision is the auto-planner's latest resolution (nil when the
	// legacy DistAuto rule or an explicit mode decided); plannedGroupSize
	// is its chosen hierarchical group size, consulted by effGroupSize
	// when no explicit GroupSize option is set.
	decision         *PlanDecision
	plannedGroupSize int

	// Reused per-step slices and dispatch record for the precondition
	// phase.
	gradsBuf, precondsBuf []*tensor.Tensor
	precondRg             precondRanger

	// eigJobsBuf is the reused decomposition fan-out queue.
	eigJobsBuf []eigJob
}

// New builds a preconditioner over every K-FAC-capturable layer of model
// (Linear and Conv2D; all other layers are left to the wrapped optimizer),
// configured by functional options over the paper defaults. c may be nil
// for single-process training.
func New(model nn.Layer, c *comm.Communicator, opts ...Option) *Preconditioner {
	return NewFromOptions(model, c, Build(opts...))
}

// NewFromOptions builds a preconditioner from a resolved Options struct —
// the form the trainer's Config carries. Zero-valued fields select the
// paper defaults.
func NewFromOptions(model nn.Layer, c *comm.Communicator, opts Options) *Preconditioner {
	opts.fillDefaults()
	skip := make(map[string]bool, len(opts.SkipLayers))
	for _, n := range opts.SkipLayers {
		skip[n] = true
	}
	layers := nn.CapturableLayers(model)
	p := &Preconditioner{comm: c, opts: opts, factorEF: comm.NewErrorFeedback(nil)}
	if opts.Autotune != nil {
		p.tuner = newTuner(*opts.Autotune)
	}
	for _, l := range layers {
		if skip[l.Name()] {
			continue
		}
		if opts.MaxFactorDim > 0 {
			da, dg := FactorDims(l)
			if da > opts.MaxFactorDim || dg > opts.MaxFactorDim {
				continue
			}
		}
		l.SetCapture(true)
		s := &layerState{layer: l}
		if opts.Precision == F32 {
			// Allocated eagerly: the pipelined engine refreshes a layer's A
			// and G float32 mirrors from concurrent record consumers, so the
			// lazy ensureF32 would race here.
			s.f32 = &layerF32{}
		}
		p.states = append(p.states, s)
	}
	p.replan()
	return p
}

// Rebind attaches the preconditioner to a new communicator — the elastic
// recovery path after a rank loss rebuilds a resized world — and re-plans
// the whole distribution (Algorithm 1, line 9) for the new world size: a
// fresh Plan with new owners, gradient-worker sets, and sub-communicator
// groups. Replica state survives the resize when the outgoing plan was
// fully replicated: the running-average factors and decompositions are
// identical on every rank (products of collective averaging), so they
// remain valid under the new placement and only *ownership* changes. c may
// be nil to shrink to a single-process preconditioner.
//
// Rebind must not be called while a Step is in flight, and all surviving
// ranks must call it with communicators of equal size (the usual SPMD
// contract). Under a partially replicated plan (MemOpt/Hybrid — including
// the implied MemOpt of LayerWise) the decompositions live only on their
// recipient sets; Rebind clears them so the next decomposition update
// rebuilds ownership consistently instead of broadcasting from stale
// roots.
func (p *Preconditioner) Rebind(c *comm.Communicator) {
	// Mode-based rather than plan-based: a world-1 MemOpt plan is trivially
	// fully replicated, but clearing stays the conservative contract for
	// every partial mode so ownership is always rebuilt fresh.
	partial := ResolveDistMode(p.opts.DistMode, p.opts.Strategy) != CommOpt
	if p.opts.DistMode == DistAuto && p.opts.AutoPlanner != nil && p.opts.AutoPlanner.Model != nil {
		// The cost-model planner may pick a different configuration at the
		// new world size; clear conservatively so ownership is always
		// rebuilt fresh under whatever plan replan resolves.
		partial = true
	}
	p.comm = c
	// Autotune baselines and compression residuals are tied to the old
	// world's timing and chunk schedule; restart both so every surviving
	// rank re-enters the static configuration at the same boundary.
	if p.tuner != nil {
		p.tuner = newTuner(AutotuneConfig{Policy: p.tuner.policy, Interval: p.tuner.interval})
	}
	p.factorEF.Reset()
	if partial {
		for _, s := range p.states {
			s.eigA, s.eigG, s.invA, s.invG = nil, nil, nil, nil
		}
		// Force the next Step to recompute factors and decompositions at
		// the new ownership before any layer preconditions.
		p.step = 0
	}
	p.replan()
}

// size returns the world size (1 when running without a communicator).
func (p *Preconditioner) size() int {
	if p.comm == nil {
		return 1
	}
	return p.comm.Size()
}

// rank returns the local rank (0 when running without a communicator).
func (p *Preconditioner) rank() int {
	if p.comm == nil {
		return 0
	}
	return p.comm.Rank()
}

// replan rebuilds the resolved distribution Plan for the current
// (strategy, mode, world) and mirrors it into the per-layer state: owner
// ranks plus the plan-scoped sub-communicator groups partial plans need.
// Every rank computes the identical plan from shared state, so no
// communication is needed (Algorithm 1, line 9).
func (p *Preconditioner) replan() {
	mode, frac := p.opts.DistMode, p.opts.GradWorkerFrac
	p.decision, p.plannedGroupSize = nil, 0
	if mode == DistAuto && p.opts.AutoPlanner != nil && p.opts.AutoPlanner.Model != nil {
		d := ResolveAutoPlan(*p.opts.AutoPlanner, p.opts.Strategy, p.FactorRefs(), p.size())
		p.decision = &d
		mode, frac, p.plannedGroupSize = d.Mode, d.GradWorkerFrac, d.GroupSize
	}
	p.plan = BuildPlan(p.opts.Strategy, mode, frac,
		p.FactorRefs(), p.size())
	partial := p.comm != nil && p.comm.Size() > 1 && !p.plan.FullyReplicated()
	for i, s := range p.states {
		lp := &p.plan.Layers[i]
		s.aWorker, s.gWorker = lp.AOwner, lp.GOwner
		s.aRecvGroup, s.gRecvGroup, s.pcGroup = nil, nil, nil
		if partial {
			s.aRecvGroup = p.comm.Group(p.plan.Recipients(i, false))
			s.gRecvGroup = p.comm.Group(p.plan.Recipients(i, true))
			s.pcGroup = p.comm.Group(lp.BcastMembers)
		}
	}
	p.computeEigTeams(runtime.GOMAXPROCS(0))
	p.stats.noteFactorMem(p.factorMemBytes())
}

// Plan returns the active resolved distribution plan.
func (p *Preconditioner) Plan() *Plan { return p.plan }

// Decision returns the auto-planner resolution behind the active plan, or
// nil when an explicit mode or the legacy DistAuto rule decided.
func (p *Preconditioner) Decision() *PlanDecision { return p.decision }

// factorMemBytes measures this rank's currently resident K-FAC factor
// state in bytes: running averages, covariance/preconditioning workspaces,
// and whatever decompositions the plan placed here. It is the live
// counterpart of Plan.DecompElemsPerRank and feeds the
// StageStats.PeakFactorBytes high-water mark.
func (p *Preconditioner) factorMemBytes() int64 {
	var elems int64
	tlen := func(t *tensor.Tensor) int64 {
		if t == nil {
			return 0
		}
		return int64(t.Len())
	}
	eglen := func(e *linalg.Eigen) int64 {
		if e == nil {
			return 0
		}
		return tlen(e.Q) + int64(len(e.Values))
	}
	for _, s := range p.states {
		elems += tlen(s.A) + tlen(s.G) + tlen(s.covA) + tlen(s.covG)
		elems += tlen(s.sample) + tlen(s.gradBuf) + tlen(s.wA) + tlen(s.wB) + tlen(s.pcBuf)
		elems += tlen(s.invA) + tlen(s.invG)
		elems += eglen(s.eigA) + eglen(s.eigG) + eglen(s.eigSpareA) + eglen(s.eigSpareG)
	}
	bytes := 8 * elems
	for _, s := range p.states {
		bytes += 4 * s.f32MemElems()
	}
	return bytes
}

// FactorRefs lists the factors in placement order: (A₀, G₁, A₁, G₂, ...) —
// layer-major with A before G.
func (p *Preconditioner) FactorRefs() []FactorRef {
	refs := make([]FactorRef, 0, 2*len(p.states))
	for i, s := range p.states {
		da, dg := FactorDims(s.layer)
		refs = append(refs, FactorRef{Layer: i, IsG: false, Dim: da})
		refs = append(refs, FactorRef{Layer: i, IsG: true, Dim: dg})
	}
	return refs
}

// NumLayers returns the number of preconditioned layers.
func (p *Preconditioner) NumLayers() int { return len(p.states) }

// Damping returns the current Tikhonov damping γ.
func (p *Preconditioner) Damping() float64 { return p.opts.Damping }

// SetDamping updates γ; used by the damping-decay schedule (§V-C).
func (p *Preconditioner) SetDamping(g float64) { p.opts.Damping = g }

// InvUpdateFreq returns the current kfac-update-freq.
func (p *Preconditioner) InvUpdateFreq() int { return p.opts.InvUpdateFreq }

// SetInvUpdateFreq updates kfac-update-freq; used by the update-frequency
// decay schedule (§V-C).
func (p *Preconditioner) SetInvUpdateFreq(k int) {
	if k < 1 {
		k = 1
	}
	p.opts.InvUpdateFreq = k
}

// SetFactorUpdateFreq updates the factor update interval.
func (p *Preconditioner) SetFactorUpdateFreq(k int) {
	if k < 1 {
		k = 1
	}
	p.opts.FactorUpdateFreq = k
}

// StepCount returns the number of completed Step calls.
func (p *Preconditioner) StepCount() int { return p.step }

// Step preconditions every registered layer's gradient in place. Call after
// gradients have been computed (and averaged across ranks) and before the
// optimizer update. lr is the current learning rate, used by the κ gradient
// scaling (Equation 18).
//
// All ranks must call Step the same number of times with identical options
// and an identically ordered layer list (guaranteed when every rank builds
// the same model): the collective schedule — and under EnginePipelined the
// async collective issue order — is a deterministic function of that state.
func (p *Preconditioner) Step(lr float64) error {
	iter := p.step
	p.step++

	doFactors := iter%p.opts.FactorUpdateFreq == 0
	doDecomp := iter%p.opts.InvUpdateFreq == 0
	// Autotune consensus runs at factor-update boundaries (after the first
	// update has produced a measurement), before either engine issues its
	// collectives — the same schedule point on every rank, so the tiny
	// consensus allreduce never interleaves differently with engine traffic.
	if p.tuner != nil && doFactors && iter > 0 && p.comm != nil && p.comm.Size() > 1 {
		if err := p.autotune(iter); err != nil {
			return err
		}
	}
	if p.opts.Engine == EnginePipelined {
		if doFactors || doDecomp {
			if err := p.updatePipelined(doFactors, doDecomp); err != nil {
				return err
			}
		}
		return p.preconditionParallel(lr)
	}

	if doFactors {
		if err := p.updateFactors(); err != nil {
			return err
		}
	}
	if doDecomp {
		if err := p.updateDecompositions(); err != nil {
			return err
		}
	}
	return p.precondition(lr)
}

// computeCovState recomputes one layer's local covariance factors into its
// reused workspaces and folds them into the running averages
// (Equations 16–17). Both step engines share this path, so their factor
// arithmetic is identical bit for bit.
func (p *Preconditioner) computeCovState(s *layerState) {
	if p.opts.Precision == F32 {
		p.computeCovState32(s)
		return
	}
	da, dg := FactorDims(s.layer)
	covA := tensor.Ensure(&s.covA, da, da)
	computeCovAInto(covA, s.layer, &s.sample)
	covG := tensor.Ensure(&s.covG, dg, dg)
	computeCovGInto(covG, s.layer)
	if s.A == nil {
		s.A, s.G = covA.Clone(), covG.Clone()
	} else {
		s.A.Lerp(p.opts.FactorDecay, covA)
		s.G.Lerp(p.opts.FactorDecay, covG)
	}
}

// updateFactors recomputes the local covariance factors, folds them into the
// running averages, and averages the running averages across workers
// (Algorithm 1, step 1).
func (p *Preconditioner) updateFactors() error {
	start := time.Now()
	for _, s := range p.states {
		p.computeCovState(s)
	}
	p.stats.add(&p.stats.FactorCompute, time.Since(start))
	p.stats.mu.Lock()
	p.stats.FactorUpdates++
	p.stats.mu.Unlock()
	p.stats.noteFactorMem(p.factorMemBytes())
	if p.comm == nil || p.comm.Size() == 1 {
		return nil
	}
	commStart := time.Now()
	fu := p.factorFuser()
	for _, s := range p.states {
		fu.Add(s.A)
		fu.Add(s.G)
	}
	err := fu.Flush()
	p.stats.add(&p.stats.FactorComm, time.Since(commStart))
	return err
}

// updateDecompositions eigendecomposes (or inverts) the factors this rank
// owns and distributes the results per the plan (Algorithm 1, step 2):
// fully replicated plans (COMM-OPT) allgather everything to every rank;
// partial plans (MEM-OPT/HYBRID) broadcast each factor only to its
// recipient group — the layer's gradient workers — and the remaining
// ranks receive preconditioned gradients each iteration instead (§VI-C3).
func (p *Preconditioner) updateDecompositions() error {
	mine := p.rank()
	distributed := p.comm != nil && p.comm.Size() > 1
	start := time.Now()
	for _, s := range p.states {
		if p.opts.PiDamping {
			s.pi = PiCorrection(s.A, s.G)
		} else {
			s.pi = 1
		}
	}
	jobs := p.eigJobsBuf[:0]
	for i, s := range p.states {
		da, dg := FactorDims(s.layer)
		if !distributed || s.aWorker == mine {
			jobs = append(jobs, eigJob{layer: i, s: s, isG: false, dim: da, team: s.aTeam})
		}
		if !distributed || s.gWorker == mine {
			jobs = append(jobs, eigJob{layer: i, s: s, isG: true, dim: dg, team: s.gTeam})
		}
	}
	p.eigJobsBuf = jobs[:0]
	if err := p.runEigJobs(jobs); err != nil {
		return err
	}
	p.stats.add(&p.stats.EigCompute, time.Since(start))
	p.stats.mu.Lock()
	p.stats.EigUpdates++
	p.stats.mu.Unlock()
	if !distributed {
		p.stats.noteFactorMem(p.factorMemBytes())
		return nil
	}
	commStart := time.Now()
	var err error
	if p.plan.FullyReplicated() {
		err = p.allgatherDecompositions()
	} else {
		err = p.broadcastDecompositions()
	}
	p.stats.add(&p.stats.EigComm, time.Since(commStart))
	p.stats.noteFactorMem(p.factorMemBytes())
	return err
}

// runEigJobs executes this rank's owned decompositions. With one job or
// one schedulable core it stays a plain serial loop (layer order); with
// more, jobs launch largest-first over an error group, each holding its
// team's worth of a GOMAXPROCS-weighted semaphore, so inter-factor
// parallelism and intra-factor teams together never oversubscribe the
// machine. Factor results are per-layer state, so ordering only shapes
// wall time, never values.
func (p *Preconditioner) runEigJobs(jobs []eigJob) error {
	run := func(j eigJob) error {
		if j.isG {
			if err := p.decomposeG(j.s); err != nil {
				return fmt.Errorf("kfac: layer %d G: %w", j.layer, err)
			}
			return nil
		}
		if err := p.decomposeA(j.s); err != nil {
			return fmt.Errorf("kfac: layer %d A: %w", j.layer, err)
		}
		return nil
	}
	procs := runtime.GOMAXPROCS(0)
	if len(jobs) <= 1 || procs <= 1 {
		for _, j := range jobs {
			if err := run(j); err != nil {
				return err
			}
		}
		return nil
	}
	sortEigJobs(jobs)
	sem := newWeightedSem(procs)
	var g sched.Group
	for _, j := range jobs {
		j := j
		g.Go(func() error {
			w := sem.acquire(j.team)
			defer sem.release(w)
			return run(j)
		})
	}
	return g.Wait()
}

// broadcastDecompositions moves each owned factor's decomposition from its
// owner to the layer's gradient workers over the plan's recipient groups,
// in layer order (A before G) — the partial-plan counterpart of
// allgatherDecompositions. Groups of one (owner is the only recipient, the
// LayerWise/MemOpt case) move nothing and reserve no tags; every rank
// takes the same branch, so the collective schedule stays aligned.
func (p *Preconditioner) broadcastDecompositions() error {
	mine := p.rank()
	for i, s := range p.states {
		for _, f := range [2]struct {
			isG   bool
			grp   *comm.Group
			owner int
		}{
			{false, s.aRecvGroup, s.aWorker},
			{true, s.gRecvGroup, s.gWorker},
		} {
			if f.grp == nil || f.grp.Size() <= 1 {
				continue
			}
			var buf []float64
			if f.owner == mine {
				buf = p.appendRecord(nil, float64(i), b2f(f.isG), s, f.isG)
			} else if f.grp.Contains(mine) {
				buf = make([]float64, p.recordLen(i, f.isG))
			}
			if err := f.grp.Broadcast(buf, f.owner); err != nil {
				return err
			}
			if f.owner != mine && f.grp.Contains(mine) {
				if err := p.consumeRecords(buf); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// recordLen returns the serialized record length of one factor's
// decomposition (header + payload; see appendRecord).
func (p *Preconditioner) recordLen(layer int, isG bool) int {
	da, dg := FactorDims(p.states[layer].layer)
	n := da
	if isG {
		n = dg
	}
	if p.opts.Mode == InverseMode {
		return 3 + n*n
	}
	return 3 + n + n*n
}

// b2f encodes the record isG flag.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (p *Preconditioner) decomposeA(s *layerState) error {
	if p.opts.Mode == InverseMode {
		gamma := p.opts.Damping
		if p.opts.PiDamping {
			gamma, _ = p.dampingSplit(s)
		}
		inv, err := linalg.InverseDamped(s.A, gamma)
		if err != nil {
			return err
		}
		s.invA = inv
		p.refreshF32A(s)
		return nil
	}
	if s.eigSpareA == nil {
		s.eigSpareA = &linalg.Eigen{}
	}
	// Refresh into the spare; swap in only on success so the previous
	// decomposition survives a convergence failure.
	if err := p.symEig(s.A, s.eigSpareA, s.aTeam); err != nil {
		return err
	}
	clampEigen(s.eigSpareA)
	s.eigA, s.eigSpareA = s.eigSpareA, s.eigA
	p.refreshF32A(s)
	return nil
}

func (p *Preconditioner) decomposeG(s *layerState) error {
	if p.opts.Mode == InverseMode {
		gamma := p.opts.Damping
		if p.opts.PiDamping {
			_, gamma = p.dampingSplit(s)
		}
		inv, err := linalg.InverseDamped(s.G, gamma)
		if err != nil {
			return err
		}
		s.invG = inv
		p.refreshF32G(s)
		return nil
	}
	if s.eigSpareG == nil {
		s.eigSpareG = &linalg.Eigen{}
	}
	if err := p.symEig(s.G, s.eigSpareG, s.gTeam); err != nil {
		return err
	}
	clampEigen(s.eigSpareG)
	s.eigG, s.eigSpareG = s.eigSpareG, s.eigG
	p.refreshF32G(s)
	return nil
}

// symEig runs the configured eigensolver into eg: the blocked solver
// with this factor's worker team (EigBlocked, the default), or the serial
// oracle (EigSerial). Blocked runs report per-kernel wall time into
// StageStats.
func (p *Preconditioner) symEig(a *tensor.Tensor, eg *linalg.Eigen, team int) error {
	if p.opts.EigSolver == EigSerial {
		return linalg.SymEigInto(a, eg)
	}
	if team < 1 {
		team = 1
	}
	var tm linalg.EigKernelTimes
	if err := linalg.SymEigBlockedTimedInto(a, eg, team, &tm); err != nil {
		return err
	}
	p.stats.addEigKernels(&tm)
	return nil
}

// clampEigen zeroes the tiny negative eigenvalues round-off can produce on
// PSD covariance factors; damping then keeps the denominator positive.
func clampEigen(eg *linalg.Eigen) {
	for i, v := range eg.Values {
		if v < 0 {
			eg.Values[i] = 0
		}
	}
}

// precondition rewrites every layer's gradient with its preconditioned
// version (Algorithm 1, step 3) and applies the κ scaling of Equation 18.
func (p *Preconditioner) precondition(lr float64) error {
	start := time.Now()
	defer func() {
		p.stats.add(&p.stats.Precondition, time.Since(start))
		p.stats.mu.Lock()
		p.stats.Steps++
		p.stats.mu.Unlock()
	}()
	grads, preconds := p.stepSlices()
	for i, s := range p.states {
		grads[i] = p.combinedGrad(s)
	}

	if p.comm != nil && p.comm.Size() > 1 && !p.plan.FullyReplicated() {
		// Partial plan (MEM-OPT / HYBRID, and the LayerWise default): each
		// layer's gradient workers precondition redundantly from their
		// shared eigenbases — bit-identical results, since the arithmetic
		// is a pure function of the (identical) decompositions and gradient
		// — and the designated root broadcasts to the ranks that hold no
		// eigenbases. All ranks call Broadcast; non-root gradient workers
		// are outside the group and keep their locally computed (equal)
		// bits after the tag reservation.
		mine := p.rank()
		for i, s := range p.states {
			var pc *tensor.Tensor
			if p.plan.IsGradWorker(i, mine) {
				pc = p.preconditionOne(s, grads[i])
			} else {
				// Broadcast fully overwrites the receive buffer.
				pc = tensor.Ensure(&s.pcBuf, grads[i].Shape...)
			}
			if err := s.pcGroup.Broadcast(pc.Data, p.plan.GradRoot(i)); err != nil {
				return err
			}
			preconds[i] = pc
		}
	} else {
		// Fully replicated plan (COMM-OPT): every rank holds all
		// decompositions and preconditions locally — no per-iteration
		// communication.
		for i, s := range p.states {
			preconds[i] = p.preconditionOne(s, grads[i])
		}
	}

	p.applyKLClip(lr, grads, preconds)
	return nil
}

// stepSlices returns the reused per-layer gradient and precondition slices.
func (p *Preconditioner) stepSlices() (grads, preconds []*tensor.Tensor) {
	n := len(p.states)
	if cap(p.gradsBuf) < n {
		p.gradsBuf = make([]*tensor.Tensor, n)
		p.precondsBuf = make([]*tensor.Tensor, n)
	}
	return p.gradsBuf[:n], p.precondsBuf[:n]
}

// combinedGrad writes the layer's combined gradient into its reused
// workspace and returns it.
func (p *Preconditioner) combinedGrad(s *layerState) *tensor.Tensor {
	da, dg := FactorDims(s.layer)
	g := tensor.Ensure(&s.gradBuf, dg, da)
	s.layer.CombinedGradInto(g)
	return g
}

// applyKLClip applies the κ gradient scaling (Equation 18) and writes the
// preconditioned gradients back: ν = min(1, sqrt(κ / (lr²·Σ|v·g|))). The
// dot-product reduction runs in layer order so both step engines produce
// bit-identical results.
func (p *Preconditioner) applyKLClip(lr float64, grads, preconds []*tensor.Tensor) {
	nu := 1.0
	if p.opts.KLClip > 0 {
		var vg float64
		for i := range p.states {
			vg += preconds[i].Dot(grads[i]) * lr * lr
		}
		if vg = math.Abs(vg); vg > 0 {
			nu = math.Min(1, math.Sqrt(p.opts.KLClip/vg))
		}
	}
	for i, s := range p.states {
		if nu != 1 {
			preconds[i].Scale(nu)
		}
		s.layer.SetCombinedGrad(preconds[i])
	}
}

// preconditionOne computes (F̂ᵢ+γI)⁻¹∇L for a single layer from the stored
// decompositions, writing into the layer's reused workspace (which it
// returns). grad must not alias the workspace tensors.
func (p *Preconditioner) preconditionOne(s *layerState, grad *tensor.Tensor) *tensor.Tensor {
	if p.opts.Precision == F32 {
		return p.preconditionOne32(s, grad)
	}
	out, in := grad.Rows(), grad.Cols()
	pc := tensor.Ensure(&s.pcBuf, out, in)
	if p.opts.Mode == InverseMode {
		if s.invA == nil || s.invG == nil {
			panic("kfac: precondition before inverse update")
		}
		// Equation 10: G⁻¹ ∇L A⁻¹ (inverses already damped).
		t1 := tensor.Ensure(&s.wA, out, in)
		tensor.MatMulInto(t1, s.invG, grad)
		tensor.MatMulInto(pc, t1, s.invA)
		return pc
	}
	if s.eigA == nil || s.eigG == nil {
		panic("kfac: precondition before eigendecomposition update")
	}
	// Equations 13–15:
	//   V₁ = Q_Gᵀ ∇L Q_A
	//   V₂ = V₁ / (υ_G υ_Aᵀ + γ)
	//   out = Q_G V₂ Q_Aᵀ
	qg, qa := s.eigG.Q, s.eigA.Q
	t1 := tensor.Ensure(&s.wA, out, in)
	tensor.MatMulT1Into(t1, qg, grad)
	v1 := tensor.Ensure(&s.wB, out, in)
	tensor.MatMulInto(v1, t1, qa)
	if p.opts.PiDamping {
		// Factored split: denominator (λ_A + π√γ)(λ_G + √γ/π).
		ga, gg := p.dampingSplit(s)
		for r := 0; r < out; r++ {
			vg := s.eigG.Values[r] + gg
			row := v1.Data[r*in : (r+1)*in]
			for c := 0; c < in; c++ {
				row[c] /= vg * (s.eigA.Values[c] + ga)
			}
		}
	} else {
		for r := 0; r < out; r++ {
			vg := s.eigG.Values[r]
			row := v1.Data[r*in : (r+1)*in]
			for c := 0; c < in; c++ {
				row[c] /= vg*s.eigA.Values[c] + p.opts.Damping
			}
		}
	}
	t2 := t1 // wA no longer needed; reuse for Q_G × V₂
	tensor.MatMulInto(t2, qg, v1)
	tensor.MatMulT2Into(pc, t2, qa)
	return pc
}

// allgatherDecompositions shares each rank's computed decompositions with
// all ranks (Algorithm 1, line 18). Results are serialized as a float64
// stream: per record [layerIdx, isG, n, values…(eigen only), payload…].
func (p *Preconditioner) allgatherDecompositions() error {
	mine := p.rank()
	var buf []float64
	for i, s := range p.states {
		if s.aWorker == mine {
			buf = p.appendRecord(buf, float64(i), 0, s, false)
		}
		if s.gWorker == mine {
			buf = p.appendRecord(buf, float64(i), 1, s, true)
		}
	}
	blocks, err := p.comm.AllgatherV(buf)
	if err != nil {
		return err
	}
	for r, block := range blocks {
		if r == mine {
			continue
		}
		if err := p.consumeRecords(block); err != nil {
			return err
		}
	}
	return nil
}

func (p *Preconditioner) appendRecord(buf []float64, layer, isG float64, s *layerState, g bool) []float64 {
	if p.opts.Mode == InverseMode {
		m := s.invA
		if g {
			m = s.invG
		}
		n := m.Rows()
		buf = append(buf, layer, isG, float64(n))
		return append(buf, m.Data...)
	}
	eg := s.eigA
	if g {
		eg = s.eigG
	}
	n := eg.Q.Rows()
	buf = append(buf, layer, isG, float64(n))
	buf = append(buf, eg.Values...)
	return append(buf, eg.Q.Data...)
}

func (p *Preconditioner) consumeRecords(block []float64) error {
	pos := 0
	for pos < len(block) {
		if pos+3 > len(block) {
			return fmt.Errorf("kfac: truncated decomposition record header")
		}
		layer := int(block[pos])
		isG := block[pos+1] != 0
		n := int(block[pos+2])
		pos += 3
		if layer < 0 || layer >= len(p.states) {
			return fmt.Errorf("kfac: record for unknown layer %d", layer)
		}
		s := p.states[layer]
		if p.opts.Mode == InverseMode {
			if pos+n*n > len(block) {
				return fmt.Errorf("kfac: truncated inverse record")
			}
			dst := &s.invA
			if isG {
				dst = &s.invG
			}
			// Fill the stored inverse in place, reusing its storage.
			copy(tensor.Ensure(dst, n, n).Data, block[pos:pos+n*n])
			pos += n * n
			if isG {
				p.refreshF32G(s)
			} else {
				p.refreshF32A(s)
			}
			continue
		}
		if pos+n+n*n > len(block) {
			return fmt.Errorf("kfac: truncated eigen record")
		}
		// Select the slot by pointer so each record touches only its own
		// field — the pipelined engine consumes a layer's A and G records on
		// concurrent waiter goroutines.
		slot := &s.eigA
		if isG {
			slot = &s.eigG
		}
		eg := *slot
		if eg == nil {
			eg = &linalg.Eigen{}
			*slot = eg
		}
		eg.SetFrom(block[pos:pos+n], block[pos+n:pos+n+n*n], n)
		pos += n + n*n
		if isG {
			p.refreshF32G(s)
		} else {
			p.refreshF32A(s)
		}
	}
	return nil
}

// ParamSchedule is the paper's "decay by a fixed scalar at fixed epochs"
// schedule used for both damping (§V-C) and kfac-update-freq decay.
type ParamSchedule struct {
	Initial     float64
	DecayEpochs []int
	Factor      float64 // multiplier applied at each listed epoch
}

// At returns the scheduled value for the given zero-based epoch.
func (s ParamSchedule) At(epoch int) float64 {
	v := s.Initial
	f := s.Factor
	if f == 0 {
		f = 0.5
	}
	for _, e := range s.DecayEpochs {
		if epoch >= e {
			v *= f
		}
	}
	return v
}
