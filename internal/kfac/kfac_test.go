package kfac

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildTinyNet returns a small conv+linear network with deterministic
// weights, suitable for K-FAC unit tests.
func buildTinyNet(seed int64) *nn.Sequential {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential("tiny",
		nn.NewConv2D("conv1", 1, 3, 3, 1, 1, true, rng),
		nn.NewReLU("relu1"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewLinear("fc", 3, 4, true, rng),
	)
}

// runStep performs one forward/backward on deterministic data and returns
// the loss gradient path through the net.
func runStep(net *nn.Sequential, seed int64, batch int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Randn(rng, 1, batch, 1, 5, 5)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	out := net.Forward(x, true)
	ce := nn.CrossEntropy{}
	_, grad := ce.Loss(out, labels)
	nn.ZeroGrads(net)
	net.Backward(grad)
}

func TestComputeCovALinearMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear("fc", 3, 2, true, rng)
	l.SetCapture(true)
	x := tensor.Randn(rng, 1, 5, 3)
	l.Forward(x, true)
	cov := ComputeCovA(l)
	// Definition: A = (1/N) Σ āᵢāᵢᵀ with ā the bias-augmented activation.
	want := tensor.New(4, 4)
	for i := 0; i < 5; i++ {
		a := make([]float64, 4)
		copy(a, x.Data[i*3:(i+1)*3])
		a[3] = 1
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				want.Data[r*4+c] += a[r] * a[c] / 5
			}
		}
	}
	if !cov.Equal(want, 1e-12) {
		t.Error("linear CovA does not match definition")
	}
	if !linalg.IsSymmetric(cov, 1e-12) {
		t.Error("CovA must be symmetric")
	}
}

func TestComputeCovGLinearMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := nn.NewLinear("fc", 3, 2, true, rng)
	l.SetCapture(true)
	x := tensor.Randn(rng, 1, 4, 3)
	out := l.Forward(x, true)
	g := tensor.Randn(rng, 1, out.Shape...)
	l.Backward(g)
	cov := ComputeCovG(l)
	// G = N·gᵀg for batch-averaged gradients.
	want := tensor.MatMulT1(g, g)
	want.Scale(4)
	if !cov.Equal(want, 1e-12) {
		t.Error("linear CovG does not match definition")
	}
}

func TestComputeCovAConvShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := nn.NewConv2D("cv", 2, 3, 3, 1, 1, true, rng)
	c.SetCapture(true)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	c.Forward(x, true)
	cov := ComputeCovA(c)
	// A dim = inC·k·k + 1 = 19.
	if cov.Rows() != 19 || cov.Cols() != 19 {
		t.Fatalf("conv CovA shape = %v, want 19x19", cov.Shape)
	}
	if !linalg.IsSymmetric(cov, 1e-10) {
		t.Error("conv CovA must be symmetric")
	}
	// PSD: all eigenvalues ≥ −ε.
	eg, err := linalg.SymEig(cov)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Values[0] < -1e-10 {
		t.Errorf("conv CovA has negative eigenvalue %v", eg.Values[0])
	}
}

func TestFactorDims(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lin := nn.NewLinear("fc", 7, 5, true, rng)
	da, dg := FactorDims(lin)
	if da != 8 || dg != 5 {
		t.Errorf("linear dims = %d,%d want 8,5", da, dg)
	}
	conv := nn.NewConv2D("cv", 3, 16, 3, 1, 1, false, rng)
	da, dg = FactorDims(conv)
	if da != 27 || dg != 16 {
		t.Errorf("conv dims = %d,%d want 27,16", da, dg)
	}
}

// TestEigenPreconditionMatchesKroneckerInverse verifies Equations 13–15:
// the eigen path computes exactly (G⊗A + γI)⁻¹ applied to vec(∇L) in the
// layer's (out × in) orientation: M[(r,c),(r',c')] = G[r,r']·A[c,c'] + γδ.
func TestEigenPreconditionMatchesKroneckerInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	out, in := 3, 4
	// Random SPD factors.
	ga := tensor.Randn(rng, 1, out, out)
	G := tensor.MatMulT1(ga, ga)
	ab := tensor.Randn(rng, 1, in, in)
	A := tensor.MatMulT1(ab, ab)
	grad := tensor.Randn(rng, 1, out, in)
	gamma := 0.05

	egA, err := linalg.SymEig(A)
	if err != nil {
		t.Fatal(err)
	}
	egG, err := linalg.SymEig(G)
	if err != nil {
		t.Fatal(err)
	}
	p := &Preconditioner{opts: Options{Mode: EigenMode, Damping: gamma}}
	s := &layerState{eigA: egA, eigG: egG}
	got := p.preconditionOne(s, grad)

	// Explicit: build the (out·in)×(out·in) matrix and solve.
	dim := out * in
	big := tensor.New(dim, dim)
	for r := 0; r < out; r++ {
		for c := 0; c < in; c++ {
			for r2 := 0; r2 < out; r2++ {
				for c2 := 0; c2 < in; c2++ {
					v := G.At(r, r2) * A.At(c, c2)
					if r == r2 && c == c2 {
						v += gamma
					}
					big.Set(v, r*in+c, r2*in+c2)
				}
			}
		}
	}
	inv, err := linalg.Inverse(big)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MatVec(inv, grad.Reshape(dim)).Reshape(out, in)
	if !got.Equal(want, 1e-7) {
		t.Error("eigen preconditioning != (G⊗A + γI)⁻¹ vec(grad)")
	}
}

// TestInversePreconditionMatchesFactoredDamping verifies Equation 11/12:
// InverseMode computes (G+γI)⁻¹ ∇L (A+γI)⁻¹ — the factored damping, which
// differs from the eigen path's exact (G⊗A+γI)⁻¹.
func TestInversePreconditionMatchesFactoredDamping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	out, in := 4, 3
	ga := tensor.Randn(rng, 1, out, out)
	G := tensor.MatMulT1(ga, ga)
	ab := tensor.Randn(rng, 1, in, in)
	A := tensor.MatMulT1(ab, ab)
	grad := tensor.Randn(rng, 1, out, in)
	gamma := 0.1

	invA, err := linalg.InverseDamped(A, gamma)
	if err != nil {
		t.Fatal(err)
	}
	invG, err := linalg.InverseDamped(G, gamma)
	if err != nil {
		t.Fatal(err)
	}
	p := &Preconditioner{opts: Options{Mode: InverseMode, Damping: gamma}}
	s := &layerState{invA: invA, invG: invG}
	got := p.preconditionOne(s, grad)
	want := tensor.MatMul(tensor.MatMul(invG, grad), invA)
	if !got.Equal(want, 1e-10) {
		t.Error("inverse preconditioning != (G+γI)⁻¹∇L(A+γI)⁻¹")
	}
}

// Property: with zero damping and well-conditioned factors, preconditioning
// then multiplying back by the Fisher recovers the gradient (the
// preconditioner really applies the inverse).
func TestPreconditionRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		out := 2 + rng.Intn(4)
		in := 2 + rng.Intn(4)
		ga := tensor.Randn(rng, 1, out, out)
		G := tensor.MatMulT1(ga, ga)
		ab := tensor.Randn(rng, 1, in, in)
		A := tensor.MatMulT1(ab, ab)
		// Regularize to keep conditioning sane.
		for i := 0; i < out; i++ {
			G.Data[i*out+i] += 1
		}
		for i := 0; i < in; i++ {
			A.Data[i*in+i] += 1
		}
		grad := tensor.Randn(rng, 1, out, in)
		egA, err := linalg.SymEig(A)
		if err != nil {
			return false
		}
		egG, err := linalg.SymEig(G)
		if err != nil {
			return false
		}
		p := &Preconditioner{opts: Options{Mode: EigenMode, Damping: 0}}
		s := &layerState{eigA: egA, eigG: egG}
		pc := p.preconditionOne(s, grad)
		// Fisher · pc = G · pc · A should recover grad.
		back := tensor.MatMul(tensor.MatMul(G, pc), A)
		return back.Equal(grad, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSingleProcessStepRunsAndChangesGrads(t *testing.T) {
	net := buildTinyNet(7)
	p := NewFromOptions(net, nil, Options{InvUpdateFreq: 2, FactorUpdateFreq: 1})
	runStep(net, 100, 8)
	before := net.Params()[0].Grad.Clone()
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	after := net.Params()[0].Grad
	if before.Equal(after, 0) {
		t.Error("preconditioning left gradients unchanged")
	}
	if after.HasNaN() {
		t.Error("preconditioned gradient has NaN")
	}
}

func TestStaleDecompositionsBetweenUpdates(t *testing.T) {
	net := buildTinyNet(8)
	p := NewFromOptions(net, nil, Options{InvUpdateFreq: 10, FactorUpdateFreq: 10})
	runStep(net, 101, 4)
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	// Capture the decomposition contents after the first (updating) step.
	// (The Eigen object itself is refreshed in place — storage is reused —
	// so identity is compared on the values, not the pointer.)
	q0 := p.states[0].eigA.Q.Clone()
	vals0 := append([]float64(nil), p.states[0].eigA.Values...)
	// Steps 1..9 must reuse the same decompositions (stale information).
	for i := 0; i < 5; i++ {
		runStep(net, int64(200+i), 4)
		if err := p.Step(0.1); err != nil {
			t.Fatal(err)
		}
		if !p.states[0].eigA.Q.Equal(q0, 0) {
			t.Fatal("decomposition recomputed before InvUpdateFreq elapsed")
		}
	}
	// Iteration 10 (the 11th step) triggers a refresh.
	for i := 0; i < 5; i++ {
		runStep(net, int64(300+i), 4)
		if err := p.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	same := p.states[0].eigA.Q.Equal(q0, 0)
	for i, v := range vals0 {
		if p.states[0].eigA.Values[i] != v {
			same = false
		}
	}
	if same {
		t.Fatal("decomposition not refreshed at InvUpdateFreq")
	}
}

func TestKLClipBoundsUpdateNorm(t *testing.T) {
	net := buildTinyNet(9)
	// Huge gradients: ν must kick in and shrink the preconditioned grad.
	pClip := NewFromOptions(net, nil, Options{KLClip: 1e-6, FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runStep(net, 102, 8)
	// Inflate gradients.
	for _, pr := range net.Params() {
		pr.Grad.Scale(100)
	}
	if err := pClip.Step(1.0); err != nil {
		t.Fatal(err)
	}
	clipped := net.Params()[0].Grad.Norm2()

	net2 := buildTinyNet(9)
	pNo := NewFromOptions(net2, nil, Options{KLClip: -1, FactorUpdateFreq: 1, InvUpdateFreq: 1})
	runStep(net2, 102, 8)
	for _, pr := range net2.Params() {
		pr.Grad.Scale(100)
	}
	if err := pNo.Step(1.0); err != nil {
		t.Fatal(err)
	}
	unclipped := net2.Params()[0].Grad.Norm2()
	if clipped >= unclipped {
		t.Errorf("kl-clip did not shrink update: clipped=%v unclipped=%v", clipped, unclipped)
	}
}

// TestDistributedMatchesSingleProcess is the core correctness property of
// Algorithm 1: with identical (already averaged) gradients and factors, the
// distributed round-robin scheme must produce the same preconditioned
// gradients as a single process, on every rank.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	for _, strategy := range []Strategy{RoundRobin, SizeGreedy, LayerWise} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			const p = 3
			const batch = 6

			// Reference: single process over the full batch.
			ref := buildTinyNet(42)
			pref := NewFromOptions(ref, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1})
			runStep(ref, 999, batch)
			if err := pref.Step(0.1); err != nil {
				t.Fatal(err)
			}
			wantGrad := ref.Params()[0].Grad.Clone()

			// Distributed: each rank sees the same data (so local gradients
			// and factors equal the averaged ones).
			fab := comm.NewInprocFabric(p)
			grads := make([]*tensor.Tensor, p)
			var wg sync.WaitGroup
			errs := make([]error, p)
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					net := buildTinyNet(42)
					c := comm.NewCommunicator(fab.Endpoint(r))
					prec := NewFromOptions(net, c, Options{
						Strategy: strategy, FactorUpdateFreq: 1, InvUpdateFreq: 1,
					})
					runStep(net, 999, batch)
					if err := prec.Step(0.1); err != nil {
						errs[r] = err
						return
					}
					grads[r] = net.Params()[0].Grad.Clone()
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			for r := 0; r < p; r++ {
				if !grads[r].Equal(wantGrad, 1e-8) {
					t.Errorf("rank %d preconditioned grad differs from single-process reference", r)
				}
			}
		})
	}
}

func TestDistributedStaleStepsSkipFactorComm(t *testing.T) {
	// With InvUpdateFreq=4 and FactorUpdateFreq=2, steps 1 and 3 must not
	// communicate anything K-FAC-related. We verify the end state stays
	// consistent across ranks (implicitly checking no deadlock from
	// asymmetric collective schedules).
	const p = 2
	fab := comm.NewInprocFabric(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	grads := make([]*tensor.Tensor, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			net := buildTinyNet(50)
			c := comm.NewCommunicator(fab.Endpoint(r))
			prec := NewFromOptions(net, c, Options{FactorUpdateFreq: 2, InvUpdateFreq: 4})
			for i := 0; i < 6; i++ {
				runStep(net, int64(700+i), 4)
				if err := prec.Step(0.1); err != nil {
					errs[r] = err
					return
				}
			}
			grads[r] = net.Params()[0].Grad.Clone()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !grads[0].Equal(grads[1], 1e-9) {
		t.Error("ranks diverged under stale-update schedule")
	}
}

func TestAssignRoundRobinInterleavesFactors(t *testing.T) {
	refs := []FactorRef{
		{0, false, 10}, {0, true, 20},
		{1, false, 30}, {1, true, 40},
		{2, false, 50}, {2, true, 60},
	}
	got := Assign(RoundRobin, refs, 4)
	want := []int{0, 1, 2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assign = %v, want %v", got, want)
		}
	}
}

func TestAssignLayerWiseKeepsLayerTogether(t *testing.T) {
	refs := []FactorRef{
		{0, false, 10}, {0, true, 20},
		{1, false, 30}, {1, true, 40},
	}
	got := Assign(LayerWise, refs, 3)
	if got[0] != got[1] || got[2] != got[3] {
		t.Errorf("LayerWise split a layer's factors: %v", got)
	}
	if got[0] == got[2] {
		t.Errorf("LayerWise did not spread layers: %v", got)
	}
}

func TestAssignSizeGreedyBalancesBetterThanRoundRobin(t *testing.T) {
	// Pathological size distribution: one huge factor followed by many tiny
	// ones. Round-robin gives one worker the huge factor plus its share of
	// tiny ones; greedy gives the huge factor a worker to itself.
	refs := []FactorRef{{0, false, 512}}
	for i := 1; i < 16; i++ {
		refs = append(refs, FactorRef{i, false, 64})
	}
	workers := 4
	rr := WorkerLoads(refs, Assign(RoundRobin, refs, workers), workers)
	gr := WorkerLoads(refs, Assign(SizeGreedy, refs, workers), workers)
	_, rrMax, _ := LoadStats(rr)
	_, grMax, _ := LoadStats(gr)
	if grMax > rrMax {
		t.Errorf("greedy max load %v worse than round-robin %v", grMax, rrMax)
	}
}

func TestAssignSingleWorker(t *testing.T) {
	refs := []FactorRef{{0, false, 4}, {0, true, 4}}
	for _, s := range []Strategy{RoundRobin, LayerWise, SizeGreedy} {
		got := Assign(s, refs, 1)
		for _, w := range got {
			if w != 0 {
				t.Errorf("%v: assignment %v with one worker", s, got)
			}
		}
	}
}

func TestWorkerLoadsAndStats(t *testing.T) {
	refs := []FactorRef{{0, false, 2}, {0, true, 2}, {1, false, 2}}
	assign := []int{0, 0, 1}
	loads := WorkerLoads(refs, assign, 2)
	if loads[0] != 2*linalg.EigFLOPs(2) || loads[1] != linalg.EigFLOPs(2) {
		t.Errorf("loads = %v", loads)
	}
	minL, maxL, mean := LoadStats(loads)
	if minL != loads[1] || maxL != loads[0] {
		t.Errorf("stats = %v %v %v", minL, maxL, mean)
	}
	if m, _, _ := LoadStats(nil); m != 0 {
		t.Error("empty LoadStats should be zeros")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, mode := range []Mode{EigenMode, InverseMode} {
		src := &Preconditioner{opts: Options{Mode: mode, Damping: 0.1}}
		dst := &Preconditioner{opts: Options{Mode: mode, Damping: 0.1}}
		n := 5
		spd := tensor.MatMulT1(tensor.Randn(rng, 1, n, n), tensor.Randn(rng, 1, n, n))
		// Use the same matrix for A-side of layer 0.
		s := &layerState{}
		if mode == EigenMode {
			eg, err := linalg.SymEig(spd)
			if err != nil {
				t.Fatal(err)
			}
			s.eigA = eg
		} else {
			inv, err := linalg.InverseDamped(spd, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			s.invA = inv
		}
		src.states = []*layerState{s}
		dst.states = []*layerState{{}}
		buf := src.appendRecord(nil, 0, 0, s, false)
		if err := dst.consumeRecords(buf); err != nil {
			t.Fatal(err)
		}
		if mode == EigenMode {
			if !dst.states[0].eigA.Q.Equal(s.eigA.Q, 0) {
				t.Error("eigen Q round trip failed")
			}
			for i := range s.eigA.Values {
				if dst.states[0].eigA.Values[i] != s.eigA.Values[i] {
					t.Error("eigen values round trip failed")
				}
			}
		} else if !dst.states[0].invA.Equal(s.invA, 0) {
			t.Error("inverse round trip failed")
		}
	}
}

func TestConsumeRecordsTruncated(t *testing.T) {
	p := &Preconditioner{opts: Options{Mode: EigenMode}}
	p.states = []*layerState{{}}
	if err := p.consumeRecords([]float64{0, 0}); err == nil {
		t.Error("expected error for truncated header")
	}
	if err := p.consumeRecords([]float64{0, 0, 5, 1, 2}); err == nil {
		t.Error("expected error for truncated payload")
	}
	if err := p.consumeRecords([]float64{9, 0, 1, 1, 1}); err == nil {
		t.Error("expected error for unknown layer")
	}
}

func TestParamSchedule(t *testing.T) {
	s := ParamSchedule{Initial: 0.003, DecayEpochs: []int{10, 20}, Factor: 0.5}
	if s.At(0) != 0.003 {
		t.Errorf("At(0) = %v", s.At(0))
	}
	if math.Abs(s.At(10)-0.0015) > 1e-15 {
		t.Errorf("At(10) = %v", s.At(10))
	}
	if math.Abs(s.At(25)-0.00075) > 1e-15 {
		t.Errorf("At(25) = %v", s.At(25))
	}
	// Zero factor defaults to 0.5.
	s2 := ParamSchedule{Initial: 1, DecayEpochs: []int{1}}
	if s2.At(2) != 0.5 {
		t.Errorf("default factor At(2) = %v", s2.At(2))
	}
}

func TestSettersAndAccessors(t *testing.T) {
	net := buildTinyNet(11)
	p := NewFromOptions(net, nil, Options{})
	if p.NumLayers() != 2 {
		t.Errorf("NumLayers = %d, want 2", p.NumLayers())
	}
	p.SetDamping(0.01)
	if p.Damping() != 0.01 {
		t.Error("SetDamping")
	}
	p.SetInvUpdateFreq(0)
	if p.InvUpdateFreq() != 1 {
		t.Error("SetInvUpdateFreq should clamp to 1")
	}
	p.SetFactorUpdateFreq(7)
	if p.opts.FactorUpdateFreq != 7 {
		t.Error("SetFactorUpdateFreq")
	}
	if p.StepCount() != 0 {
		t.Error("StepCount should start at 0")
	}
	refs := p.FactorRefs()
	if len(refs) != 4 {
		t.Errorf("FactorRefs = %d, want 4", len(refs))
	}
}

func TestInverseModeSingleProcess(t *testing.T) {
	net := buildTinyNet(12)
	p := NewFromOptions(net, nil, Options{Mode: InverseMode, FactorUpdateFreq: 1, InvUpdateFreq: 1, Damping: 0.01})
	runStep(net, 500, 8)
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	if net.Params()[0].Grad.HasNaN() {
		t.Error("inverse-mode preconditioned grad has NaN")
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		RoundRobin:   "K-FAC-opt",
		LayerWise:    "K-FAC-lw",
		SizeGreedy:   "K-FAC-greedy",
		Strategy(99): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestModeString(t *testing.T) {
	if EigenMode.String() == InverseMode.String() {
		t.Error("modes should print differently")
	}
}

func TestParamsPerWorker(t *testing.T) {
	refs := []FactorRef{
		{0, false, 4}, {0, true, 8},
		{1, false, 4}, {1, true, 8},
	}
	assign := []int{0, 1, 0, 1}
	params := map[int]int{0: 100, 1: 200}
	got := ParamsPerWorker(refs, assign, 2, params)
	if got[0] != 0 || got[1] != 300 {
		t.Errorf("ParamsPerWorker = %v", got)
	}
}

func TestDistributedFourRanksManyLayers(t *testing.T) {
	// More ranks than layers: exercises idle-worker handling in placement
	// and ensures allgather with empty contributions works.
	const p = 6 // tiny net has 2 layers = 4 factors < 6 ranks
	fab := comm.NewInprocFabric(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	grads := make([]*tensor.Tensor, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			net := buildTinyNet(77)
			c := comm.NewCommunicator(fab.Endpoint(r))
			prec := NewFromOptions(net, c, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1})
			runStep(net, 888, 4)
			if err := prec.Step(0.1); err != nil {
				errs[r] = fmt.Errorf("step: %w", err)
				return
			}
			grads[r] = net.Params()[0].Grad.Clone()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < p; r++ {
		if !grads[r].Equal(grads[0], 1e-9) {
			t.Errorf("rank %d grads diverged", r)
		}
	}
}

func TestSkipLayersExcluded(t *testing.T) {
	net := buildTinyNet(90)
	p := NewFromOptions(net, nil, Options{SkipLayers: []string{"fc"}})
	if p.NumLayers() != 1 {
		t.Errorf("NumLayers = %d, want 1 after skipping fc", p.NumLayers())
	}
	// The skipped layer's gradient must be untouched by Step.
	runStep(net, 900, 4)
	var fcGrad *tensor.Tensor
	for _, l := range nn.CapturableLayers(net) {
		if l.Name() == "fc" {
			fcGrad = l.CombinedGrad()
		}
	}
	if err := p.Step(0.1); err != nil {
		t.Fatal(err)
	}
	for _, l := range nn.CapturableLayers(net) {
		if l.Name() == "fc" {
			if !l.CombinedGrad().Equal(fcGrad, 0) {
				t.Error("skipped layer's gradient was modified")
			}
		}
	}
}

func TestMaxFactorDimExcludesWideLayers(t *testing.T) {
	net := buildTinyNet(91)
	// conv1 A dim = 1·3·3+1 = 10; fc A dim = 4. Limit 5 keeps only fc.
	p := NewFromOptions(net, nil, Options{MaxFactorDim: 5})
	if p.NumLayers() != 1 {
		t.Errorf("NumLayers = %d, want 1 under MaxFactorDim", p.NumLayers())
	}
}
