package kfac

import (
	"math"
	"testing"
)

func TestBuildResolvesOptions(t *testing.T) {
	o := Build(
		WithMode(InverseMode),
		WithStrategy(SizeGreedy),
		WithDamping(0.01),
		WithFactorDecay(0.9),
		WithKLClip(-1),
		WithFactorUpdateFreq(3),
		WithInvUpdateFreq(30),
		WithFusionBytes(1<<20),
		WithPiDamping(),
		WithSkipLayers("fc", "conv1"),
		WithMaxFactorDim(64),
		WithEngine(EnginePipelined),
		WithPipelineWorkers(2),
	)
	want := Options{
		Mode: InverseMode, Strategy: SizeGreedy, Damping: 0.01,
		FactorDecay: 0.9, KLClip: -1, FactorUpdateFreq: 3, InvUpdateFreq: 30,
		FusionBytes: 1 << 20, PiDamping: true, SkipLayers: []string{"fc", "conv1"},
		MaxFactorDim: 64, Engine: EnginePipelined, PipelineWorkers: 2,
	}
	if o.Mode != want.Mode || o.Strategy != want.Strategy || o.Damping != want.Damping ||
		o.FactorDecay != want.FactorDecay || o.KLClip != want.KLClip ||
		o.FactorUpdateFreq != want.FactorUpdateFreq || o.InvUpdateFreq != want.InvUpdateFreq ||
		o.FusionBytes != want.FusionBytes || o.PiDamping != want.PiDamping ||
		o.MaxFactorDim != want.MaxFactorDim || o.Engine != want.Engine ||
		o.PipelineWorkers != want.PipelineWorkers {
		t.Errorf("Build = %+v, want %+v", o, want)
	}
	if len(o.SkipLayers) != 2 || o.SkipLayers[0] != "fc" || o.SkipLayers[1] != "conv1" {
		t.Errorf("SkipLayers = %v", o.SkipLayers)
	}
}

func TestDistributionOptions(t *testing.T) {
	o := Build(WithDistMode(MemOpt), WithGroupSize(4))
	if o.DistMode != MemOpt || o.GroupSize != 4 {
		t.Errorf("Build = %+v", o)
	}
	// WithGradWorkerFrac selects Hybrid and carries the fraction.
	o = Build(WithGradWorkerFrac(0.25))
	if o.DistMode != Hybrid || o.GradWorkerFrac != 0.25 {
		t.Errorf("WithGradWorkerFrac: %+v", o)
	}
	// Default: DistAuto resolves per strategy at plan-build time.
	o = Build()
	if o.DistMode != DistAuto {
		t.Errorf("default DistMode = %v, want DistAuto", o.DistMode)
	}
}

// WithOptions seeds from a resolved struct; later options override fields.
func TestWithOptionsBaseAndOverride(t *testing.T) {
	base := Options{Damping: 0.01, InvUpdateFreq: 50, Strategy: LayerWise}
	o := Build(WithOptions(base), WithDamping(0.002))
	if o.Damping != 0.002 {
		t.Errorf("override lost: damping = %v", o.Damping)
	}
	if o.InvUpdateFreq != 50 || o.Strategy != LayerWise {
		t.Errorf("base lost: %+v", o)
	}
}

// New with no options must behave exactly like NewFromOptions with a zero
// struct: the paper defaults.
func TestNewAppliesPaperDefaults(t *testing.T) {
	net := buildTinyNet(1)
	p := New(net, nil)
	if p.opts.Damping != 0.001 || p.opts.FactorDecay != 0.95 || p.opts.KLClip != 0.001 ||
		p.opts.FactorUpdateFreq != 10 || p.opts.InvUpdateFreq != 100 {
		t.Errorf("defaults not applied: %+v", p.opts)
	}
	if p.opts.Engine != EngineSync {
		t.Errorf("default engine = %v", p.opts.Engine)
	}
}

// A preconditioner built from options must match one built from the
// equivalent resolved struct step for step.
func TestNewMatchesNewFromOptions(t *testing.T) {
	a := buildTinyNet(7)
	b := buildTinyNet(7)
	pa := New(a, nil, WithDamping(0.01), WithFactorUpdateFreq(1), WithInvUpdateFreq(2))
	pb := NewFromOptions(b, nil, Options{Damping: 0.01, FactorUpdateFreq: 1, InvUpdateFreq: 2})
	defer pa.Close()
	defer pb.Close()
	for i := 0; i < 4; i++ {
		runStep(a, int64(100+i), 4)
		runStep(b, int64(100+i), 4)
		if err := pa.Step(0.1); err != nil {
			t.Fatal(err)
		}
		if err := pb.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	ga, gb := a.Params()[0].Grad, b.Params()[0].Grad
	for i := range ga.Data {
		if ga.Data[i] != gb.Data[i] {
			t.Fatalf("gradient %d diverged: %v vs %v", i, ga.Data[i], gb.Data[i])
		}
	}
}

func TestParamScheduleDecaysAtEpochBoundaries(t *testing.T) {
	s := ParamSchedule{Initial: 0.01, DecayEpochs: []int{3, 6}, Factor: 0.5}
	cases := []struct {
		epoch int
		want  float64
	}{
		{0, 0.01},
		{2, 0.01},    // last epoch before the first boundary
		{3, 0.005},   // decay applies AT the boundary epoch
		{5, 0.005},   // holds between boundaries
		{6, 0.0025},  // second boundary compounds
		{50, 0.0025}, // holds forever after
	}
	for _, c := range cases {
		if got := s.At(c.epoch); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("At(%d) = %v, want %v", c.epoch, got, c.want)
		}
	}
}

func TestParamScheduleDefaultFactorIsHalf(t *testing.T) {
	s := ParamSchedule{Initial: 8, DecayEpochs: []int{1, 2, 3}}
	if got := s.At(3); got != 1 {
		t.Errorf("At(3) with default factor = %v, want 1 (8 × 0.5³)", got)
	}
}

func TestParamScheduleNoDecayEpochsIsConstant(t *testing.T) {
	s := ParamSchedule{Initial: 0.07}
	for _, e := range []int{0, 1, 10, 1000} {
		if got := s.At(e); got != 0.07 {
			t.Errorf("At(%d) = %v, want constant 0.07", e, got)
		}
	}
}

// A growth schedule (factor > 1) models the paper's update-frequency decay,
// where the INTERVAL grows over training.
func TestParamScheduleGrowthForUpdateFreq(t *testing.T) {
	s := ParamSchedule{Initial: 10, DecayEpochs: []int{2}, Factor: 2}
	if got := s.At(1); got != 10 {
		t.Errorf("At(1) = %v, want 10", got)
	}
	if got := s.At(2); got != 20 {
		t.Errorf("At(2) = %v, want 20", got)
	}
}
