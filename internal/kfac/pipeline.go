package kfac

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Engine selects the Step execution engine.
type Engine int

const (
	// EngineSync executes the K-FAC update stages strictly in sequence
	// (compute all factors → fused allreduce → decompose owned layers →
	// monolithic allgather), as in the seed implementation. It remains the
	// default so ablations and the existing test matrix exercise it.
	EngineSync Engine = iota
	// EnginePipelined drives per-layer units through a staged pipeline over
	// an internal sched.Pool: covariance computation for layer i+1 overlaps
	// the in-flight fused allreduce of layer i, eigendecompositions of a
	// rank's owned layers run in parallel across cores, and the
	// decomposition exchange is a per-layer streamed allgather instead of a
	// monolithic one. Both engines produce numerically identical
	// preconditioned gradients (see TestPipelinedMatchesSync): chunk
	// boundaries, collective payloads, and every floating-point reduction
	// order are shared with the synchronous path.
	EnginePipelined
)

// String names the engine for logs and experiment tables.
func (e Engine) String() string {
	if e == EnginePipelined {
		return "pipelined"
	}
	return "sync"
}

// ensurePool lazily creates the worker pool for the pipelined engine. Step
// is invoked from a single goroutine per rank, so no locking is needed.
func (p *Preconditioner) ensurePool() *sched.Pool {
	if p.pool == nil {
		p.pool = sched.NewPool(p.opts.PipelineWorkers)
	}
	return p.pool
}

// Close releases the pipelined engine's worker pool. It is safe to call on
// any preconditioner (a no-op for the sync engine) and after Close the
// preconditioner may still Step — the pool is recreated on demand.
func (p *Preconditioner) Close() {
	if p.pool != nil {
		p.pool.Close()
		p.pool = nil
	}
}

// commWindow measures a communication phase as the wall-clock span from the
// first operation issued to the last completion observed. Unlike summing
// per-operation blocked time, the span cannot double-count intervals where
// several operations were in flight at once, so the overlap accounting
// built on it stays honest.
type commWindow struct {
	mu      sync.Mutex
	started bool
	start   time.Time
	last    time.Time
}

// open records the phase start at the first call; later calls are no-ops.
func (w *commWindow) open() {
	w.mu.Lock()
	if !w.started {
		w.started = true
		w.start = time.Now()
		w.last = w.start
	}
	w.mu.Unlock()
}

// mark extends the phase end to now.
func (w *commWindow) mark() {
	w.mu.Lock()
	if t := time.Now(); t.After(w.last) {
		w.last = t
	}
	w.mu.Unlock()
}

// duration returns the measured span (zero if the phase never opened).
func (w *commWindow) duration() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		return 0
	}
	return w.last.Sub(w.start)
}

// pipelineRun carries the transient state of one pipelined update phase.
type pipelineRun struct {
	p           *Preconditioner
	doFactors   bool
	doDecomp    bool
	distributed bool
	mine        int

	// Per-layer stage events (distributed path only).
	covDone    []chan struct{}
	averaged   []chan struct{}
	decomposed []chan struct{}

	// failed is closed once on the first error so stage waiters unblock
	// promptly instead of deadlocking on events that will never fire.
	failed   chan struct{}
	failOnce sync.Once
	failErr  error

	grp sched.Group
	// taskWG tracks pool tasks submitted by the distributed path, so a
	// failing run drains them before Step returns — otherwise an abandoned
	// covariance task could still be mutating layer state while the caller
	// retries or tears down.
	taskWG sync.WaitGroup

	// Compute timings in nanoseconds (accumulated atomically across
	// workers) and communication phase windows.
	facCompNS, eigCompNS atomic.Int64
	idleNS               atomic.Int64
	facCommWin           commWindow
	eigCommWin           commWindow
}

func (r *pipelineRun) fail(err error) {
	r.failOnce.Do(func() {
		r.failErr = err
		close(r.failed)
	})
}

// waitEvent blocks until ev fires or the pipeline fails; it reports whether
// the caller should proceed.
func (r *pipelineRun) waitEvent(ev chan struct{}) bool {
	if ev == nil {
		return true
	}
	select {
	case <-ev:
		return true
	case <-r.failed:
		return false
	}
}

// waitEventIdle is waitEvent with the blocked time charged to the idle
// counter. Only the collective issuer uses it: issuer starvation is the
// "pipeline stalled waiting for upstream compute" measure StageStats
// reports, whereas gate goroutines and the final barrier block by design.
func (r *pipelineRun) waitEventIdle(ev chan struct{}) bool {
	if ev == nil {
		return true
	}
	select {
	case <-ev:
		return true
	default:
	}
	start := time.Now()
	defer func() { r.idleNS.Add(int64(time.Since(start))) }()
	return r.waitEvent(ev)
}

// submit runs fn on the pool, tracked by taskWG so the run can drain.
func (r *pipelineRun) submit(pool *sched.Pool, fn func()) {
	r.taskWG.Add(1)
	pool.Submit(func() {
		defer r.taskWG.Done()
		fn()
	})
}

// updatePipelined runs the factor and/or decomposition update as a staged
// per-layer pipeline, then folds the stage timings into the shared stats.
func (p *Preconditioner) updatePipelined(doFactors, doDecomp bool) error {
	n := len(p.states)
	if n == 0 {
		return nil
	}
	pool := p.ensurePool()
	wallStart := time.Now()
	r := &pipelineRun{
		p:           p,
		doFactors:   doFactors,
		doDecomp:    doDecomp,
		distributed: p.comm != nil && p.comm.Size() > 1,
		mine:        p.rank(),
		failed:      make(chan struct{}),
	}

	var err error
	if r.distributed {
		err = r.runDistributed(pool)
	} else {
		err = r.runLocal(pool)
	}

	st := &p.stats
	st.mu.Lock()
	facComp := time.Duration(r.facCompNS.Load())
	eigComp := time.Duration(r.eigCompNS.Load())
	facComm := r.facCommWin.duration()
	eigComm := r.eigCommWin.duration()
	st.FactorCompute += facComp
	st.FactorComm += facComm
	st.EigCompute += eigComp
	st.EigComm += eigComm
	if doFactors {
		st.FactorUpdates++
	}
	if doDecomp {
		st.EigUpdates++
	}
	st.PipelineWall += time.Since(wallStart)
	st.PipelineWork += facComp + facComm + eigComp + eigComm
	st.PipelineIdle += time.Duration(r.idleNS.Load())
	st.PipelineUpdates++
	st.mu.Unlock()
	if err == nil {
		st.noteFactorMem(p.factorMemBytes())
	}
	return err
}

// runLocal executes the single-process pipeline as a pure sched.Graph: one
// covariance task per layer, with each layer's decomposition task depending
// on its covariance task. No events or collectives are involved, so layer
// parallelism is bounded only by the pool.
func (r *pipelineRun) runLocal(pool *sched.Pool) error {
	g := sched.NewGraph(pool)
	var covTasks []*sched.Task
	if r.doFactors {
		covTasks = make([]*sched.Task, len(r.p.states))
		for i, s := range r.p.states {
			s := s
			covTasks[i] = g.Add(func() error {
				r.computeCov(s)
				return nil
			})
		}
	}
	if r.doDecomp {
		for i, s := range r.p.states {
			i, s := i, s
			var deps []*sched.Task
			if covTasks != nil {
				deps = append(deps, covTasks[i])
			}
			g.Add(func() error { return r.decomposeLayer(i, s) }, deps...)
		}
	}
	return g.Wait()
}

// runDistributed executes the event-driven pipeline: pool tasks feed
// per-layer events, a single issuer goroutine drives all collectives, and
// waiter goroutines fan results back in.
func (r *pipelineRun) runDistributed(pool *sched.Pool) error {
	n := len(r.p.states)
	if r.doFactors {
		r.covDone = make([]chan struct{}, n)
		r.averaged = make([]chan struct{}, n)
		for i := range r.covDone {
			r.covDone[i] = make(chan struct{})
			r.averaged[i] = make(chan struct{})
		}
		for i, s := range r.p.states {
			i, s := i, s
			r.submit(pool, func() {
				r.computeCov(s)
				close(r.covDone[i])
			})
		}
	}
	if r.doDecomp {
		r.decomposed = make([]chan struct{}, n)
		for i := range r.decomposed {
			r.decomposed[i] = make(chan struct{})
		}
		for i, s := range r.p.states {
			i, s := i, s
			var gate chan struct{}
			if r.doFactors {
				gate = r.averaged[i]
			}
			r.grp.Go(func() error {
				if !r.waitEvent(gate) {
					return nil
				}
				r.submit(pool, func() {
					if err := r.decomposeLayer(i, s); err != nil {
						r.fail(err)
						return
					}
					close(r.decomposed[i])
				})
				return nil
			})
		}
	}
	r.grp.Go(r.runIssuer)

	// Final barrier: every layer must clear its last stage (or the pipeline
	// must have failed), then the waiter goroutines and pool tasks drain.
	final := r.decomposed
	if final == nil {
		final = r.averaged
	}
	for i := 0; i < n; i++ {
		if !r.waitEvent(final[i]) {
			break
		}
	}
	err := r.grp.Wait()
	r.taskWG.Wait()
	if r.failErr != nil {
		err = r.failErr
	}
	return err
}

// computeCov computes a layer's local covariance factors and folds them
// into the running averages (Equations 16–17). The arithmetic is shared
// with the synchronous engine via computeCovState; only the per-layer
// workspaces of s are touched, so layers can run concurrently.
func (r *pipelineRun) computeCov(s *layerState) {
	start := time.Now()
	r.p.computeCovState(s)
	r.facCompNS.Add(int64(time.Since(start)))
}

// decomposeLayer computes the π correction and eigendecomposes (or
// inverts) this rank's owned factors for one layer.
func (r *pipelineRun) decomposeLayer(i int, s *layerState) error {
	start := time.Now()
	defer func() { r.eigCompNS.Add(int64(time.Since(start))) }()
	if r.p.opts.PiDamping {
		s.pi = PiCorrection(s.A, s.G)
	} else {
		s.pi = 1
	}
	if !r.distributed || s.aWorker == r.mine {
		if err := r.p.decomposeA(s); err != nil {
			return fmt.Errorf("kfac: layer %d A: %w", i, err)
		}
	}
	if !r.distributed || s.gWorker == r.mine {
		if err := r.p.decomposeG(s); err != nil {
			return fmt.Errorf("kfac: layer %d G: %w", i, err)
		}
	}
	return nil
}

// runIssuer is the single goroutine that issues every collective of the
// pipeline. Order is deterministic and identical on all ranks: fused factor
// allreduce chunks as covariance results land (layer order), then one
// allgather per layer as decompositions land (layer order). This is what
// keeps overlapping async collectives from cross-matching: tag namespaces
// are reserved at call time in the same sequence everywhere.
func (r *pipelineRun) runIssuer() error {
	p := r.p
	if r.doFactors {
		fu := p.factorFuser()
		layerOf := make(map[*tensor.Tensor]int, 2*len(p.states))
		remaining := make([]atomic.Int32, len(p.states))
		for i, s := range p.states {
			if !r.waitEventIdle(r.covDone[i]) {
				return nil
			}
			layerOf[s.A] = i
			layerOf[s.G] = i
			remaining[i].Store(2)
			fu.Add(s.A)
			fu.Add(s.G)
			r.spawnChunkWaiters(fu.TakeLaunched(), layerOf, remaining)
		}
		r.spawnChunkWaiters(fu.FlushAsync(), layerOf, remaining)
	}
	if r.doDecomp {
		if p.plan.FullyReplicated() {
			r.issueAllgathers()
		} else {
			r.issueRecipientBroadcasts()
		}
	}
	return nil
}

// issueAllgathers streams the fully replicated (COMM-OPT) decomposition
// exchange: one async AllgatherV per layer as its decompositions land, in
// layer order.
func (r *pipelineRun) issueAllgathers() {
	p := r.p
	for i, s := range p.states {
		if !r.waitEventIdle(r.decomposed[i]) {
			return
		}
		var buf []float64
		if s.aWorker == r.mine {
			buf = p.appendRecord(buf, float64(i), 0, s, false)
		}
		if s.gWorker == r.mine {
			buf = p.appendRecord(buf, float64(i), 1, s, true)
		}
		r.eigCommWin.open()
		h := p.comm.AllgatherVAsync(buf)
		r.grp.Go(func() error {
			blocks, err := h.Wait()
			r.eigCommWin.mark()
			if err != nil {
				r.fail(err)
				return err
			}
			for rank, block := range blocks {
				if rank == r.mine {
					continue
				}
				if err := p.consumeRecords(block); err != nil {
					r.fail(err)
					return err
				}
			}
			return nil
		})
	}
}

// issueRecipientBroadcasts streams the partial-plan (MEM-OPT/HYBRID)
// decomposition exchange: per factor, one async group broadcast from the
// owner to the layer's recipient group, in layer order (A before G) — the
// pipelined counterpart of broadcastDecompositions. Singleton groups (the
// owner is the only recipient) issue nothing; the schedule is a pure
// function of the shared plan, so every rank issues identically.
func (r *pipelineRun) issueRecipientBroadcasts() {
	p := r.p
	for i, s := range p.states {
		if !r.waitEventIdle(r.decomposed[i]) {
			return
		}
		for _, f := range [2]struct {
			isG   bool
			grp   *comm.Group
			owner int
		}{
			{false, s.aRecvGroup, s.aWorker},
			{true, s.gRecvGroup, s.gWorker},
		} {
			if f.grp == nil || f.grp.Size() <= 1 {
				continue
			}
			var buf []float64
			member := f.grp.Contains(r.mine)
			if f.owner == r.mine {
				buf = p.appendRecord(nil, float64(i), b2f(f.isG), s, f.isG)
			} else if member {
				buf = make([]float64, p.recordLen(i, f.isG))
			}
			r.eigCommWin.open()
			h := f.grp.BroadcastAsync(buf, f.owner)
			owner, consume := f.owner, buf
			r.grp.Go(func() error {
				err := h.Wait()
				r.eigCommWin.mark()
				if err != nil {
					r.fail(err)
					return err
				}
				if owner != r.mine && member {
					if err := p.consumeRecords(consume); err != nil {
						r.fail(err)
						return err
					}
				}
				return nil
			})
		}
	}
}

// spawnChunkWaiters waits on each launched fused-allreduce chunk on its own
// goroutine; when a chunk lands its tensors are scattered back and the
// layers whose factors are now fully averaged fire their averaged events.
// The tensor→layer resolution happens here, on the issuer goroutine, so
// the (still growing) layerOf map is never touched concurrently.
func (r *pipelineRun) spawnChunkWaiters(chunks []*comm.Chunk, layerOf map[*tensor.Tensor]int, remaining []atomic.Int32) {
	for _, ch := range chunks {
		ch := ch
		layers := make([]int, len(ch.Tensors()))
		for j, t := range ch.Tensors() {
			layers[j] = layerOf[t]
		}
		r.facCommWin.open()
		r.grp.Go(func() error {
			err := ch.Wait()
			r.facCommWin.mark()
			if err != nil {
				r.fail(err)
				return err
			}
			for _, i := range layers {
				if remaining[i].Add(-1) == 0 {
					close(r.averaged[i])
				}
			}
			return nil
		})
	}
}

// precondRanger runs per-layer preconditioning over a range of layer
// indices — the leaf-compute unit preconditionParallel fans out over the
// engine pool with sched.Pool.ForEach. Each layer touches only its own
// state workspaces, so ranges are independent.
type precondRanger struct {
	wg              sync.WaitGroup
	p               *Preconditioner
	grads, preconds []*tensor.Tensor
}

// RunRange implements sched.Ranger.
func (r *precondRanger) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		r.preconds[i] = r.p.preconditionOne(r.p.states[i], r.grads[i])
	}
}

// preconditionParallel is the pipelined-engine analogue of precondition:
// per-layer preconditioning fans out over the worker pool (zero-allocation
// ForEach dispatch), while the κ gradient scaling keeps its deterministic
// layer-order reduction so results are bit-identical to the synchronous
// engine. Partially replicated plans (MEM-OPT/HYBRID) keep the sequential
// path — their per-layer result broadcasts are ordered collectives.
func (p *Preconditioner) preconditionParallel(lr float64) error {
	if p.comm != nil && p.comm.Size() > 1 && !p.plan.FullyReplicated() {
		return p.precondition(lr)
	}
	start := time.Now()
	defer func() {
		p.stats.add(&p.stats.Precondition, time.Since(start))
		p.stats.mu.Lock()
		p.stats.Steps++
		p.stats.mu.Unlock()
	}()
	grads, preconds := p.stepSlices()
	for i, s := range p.states {
		grads[i] = p.combinedGrad(s)
	}
	pool := p.ensurePool()
	r := &p.precondRg
	r.p, r.grads, r.preconds = p, grads, preconds
	pool.ForEach(len(p.states), pool.Workers(), r, &r.wg)
	p.applyKLClip(lr, grads, preconds)
	return nil
}
