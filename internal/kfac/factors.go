// Package kfac implements the paper's primary contribution: a distributed
// K-FAC gradient preconditioner (Algorithm 1) that composes with any
// first-order optimizer.
//
// Per layer i, K-FAC approximates the Fisher block as the Kronecker product
// F̂ᵢ = A_{i−1} ⊗ Gᵢ of two small covariance factors (Equation 5): A from the
// layer-input activations and G from the gradients of the layer outputs.
// The preconditioned gradient is computed from the eigendecompositions of A
// and G (Equations 13–15, the inverse-free path selected in §IV-A), or — for
// the Table I ablation — from explicit damped inverses (Equation 11).
//
// Distribution (§IV-B): factors are assigned to workers (round-robin by
// default, matching K-FAC-opt); each worker eigendecomposes only its
// assigned factors and the results are allgathered so every worker can
// precondition all layers locally. The layer-wise strategy of Osawa et al.
// (K-FAC-lw) and the size-greedy placement the paper proposes as future work
// are also implemented for the scaling studies.
package kfac

import (
	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// covKernel computes dst = aᵀa. It defaults to the blocked symmetric
// multiply (half the multiply-adds of a general matmul, parallel over the
// shared compute pool); the bit-identity tests swap in the reference
// general-matmul path to prove the two produce identical bits end to end.
var covKernel = linalg.SymMulT1Into

// ComputeCovA forms the activation covariance factor A for a captured
// layer, following the conventions of the paper's reference implementation:
//
//	Linear: a [N, in] (+bias column of ones)   → A = aᵀa / N
//	Conv2D: a [N·S, C·kh·kw] (+bias column), each patch scaled by 1/S
//	        → A = aᵀa / (S²·N)
//
// where S is the number of spatial output positions. The bias column makes
// A's dimension in+1 so the bias gradient is preconditioned jointly with
// the weights.
func ComputeCovA(layer nn.KFACCapturable) *tensor.Tensor {
	da, _ := FactorDims(layer)
	cov := tensor.New(da, da)
	var sample *tensor.Tensor
	computeCovAInto(cov, layer, &sample)
	return cov
}

// computeCovAInto is ComputeCovA writing into dst (da×da) and drawing the
// bias-augmented sample matrix from *sample — the allocation-free form the
// preconditioner's per-layer workspaces use.
func computeCovAInto(dst *tensor.Tensor, layer nn.KFACCapturable, sample **tensor.Tensor) {
	act := layer.CapturedActivation()
	if act == nil {
		panic("kfac: ComputeCovA called without captured activation (is capture enabled?)")
	}
	rows, cols := act.Rows(), act.Cols()
	spatial := layer.SpatialSize()
	batch := layer.BatchSize()
	scale := 1.0
	if spatial > 1 {
		scale = 1 / float64(spatial)
	}
	d := cols
	if layer.HasBias() {
		d++
	}
	// Form the (optionally bias-augmented, scaled) sample matrix without
	// copying when possible.
	a := act
	if layer.HasBias() || scale != 1 {
		a = tensor.Ensure(sample, rows, d)
		for i := 0; i < rows; i++ {
			src := act.Data[i*cols : (i+1)*cols]
			dst := a.Data[i*d : (i+1)*d]
			for j, v := range src {
				dst[j] = v * scale
			}
			if layer.HasBias() {
				dst[d-1] = scale
			}
		}
	}
	covKernel(dst, a)
	dst.Scale(1 / float64(batch))
}

// ComputeCovG forms the output-gradient covariance factor G, assuming the
// captured gradients come from a batch-averaged loss (the standard mean
// cross-entropy), again following the reference implementation:
//
//	Linear: g [N, out]      → G = N · gᵀg
//	Conv2D: g [N·S, out]    → G = (gᵀg) · N · S   (after scaling rows by N·S,
//	                          normalized by the N·S sample count)
func ComputeCovG(layer nn.KFACCapturable) *tensor.Tensor {
	_, dg := FactorDims(layer)
	cov := tensor.New(dg, dg)
	computeCovGInto(cov, layer)
	return cov
}

// computeCovGInto is ComputeCovG writing into dst (dg×dg).
func computeCovGInto(dst *tensor.Tensor, layer nn.KFACCapturable) {
	g := layer.CapturedOutputGrad()
	if g == nil {
		panic("kfac: ComputeCovG called without captured output gradient")
	}
	batch := layer.BatchSize()
	spatial := layer.SpatialSize()
	// Undo batch averaging and spatial scaling: scale each sample row by
	// N·S, then normalize the covariance by the sample count (N·S rows for
	// conv, N rows for linear). Algebraically G = (N·S)²/(N·S)·gᵀg = N·S·gᵀg.
	covKernel(dst, g)
	dst.Scale(float64(batch) * float64(spatial))
}

// FactorDims returns the dimensions (rows of A, rows of G) the factors of a
// layer will have, accounting for the bias column.
func FactorDims(layer nn.KFACCapturable) (da, dg int) {
	da = layer.InDim()
	if layer.HasBias() {
		da++
	}
	return da, layer.OutDim()
}
