package kfac

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Mixed-precision K-FAC step (Options.Precision == F32).
//
// The float32 path reroutes the per-step O(n³) work — covariance Gram
// products and the four preconditioning matmuls — through the float32
// kernels with float64 accumulation. Everything that carries state across
// steps or ranks stays float64 and bit-compatible with the F64 path:
// running-average factors A and G (and their Lerp), the factor allreduce,
// decomposition records, checkpoints, Param.Grad, and the preconditioned-
// gradient broadcast buffers. Float32 state is strictly derived — eigenbasis
// mirrors refreshed when a decomposition changes, plus per-layer scratch —
// so it never needs to be communicated or persisted ("convert at the
// boundary", docs/ARCHITECTURE.md).

// Precision selects the arithmetic width of the K-FAC compute kernels.
type Precision int

const (
	// F64 is the default full-precision path; results are bit-identical to
	// the reference implementation.
	F64 Precision = iota
	// F32 stores and multiplies in float32 while accumulating inner
	// products in float64 (see internal/tensor/kernels32.go). State and
	// communication remain float64.
	F32
)

// String names the precision for logs and the bench JSON schema.
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses a CLI precision flag ("f64"/"float64", default, or
// "f32"/"float32").
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("kfac: unknown precision %q (want f32 or f64)", s)
}

// WithPrecision selects the compute precision of the K-FAC step kernels
// (default F64).
func WithPrecision(pr Precision) Option { return func(o *Options) { o.Precision = pr } }

// layerF32 carries one layer's float32 mirrors and workspaces, allocated
// only under Precision == F32.
type layerF32 struct {
	// Eigenbasis mirrors (EigenMode) and damped-inverse mirrors
	// (InverseMode), narrowed from the float64 decompositions whenever
	// those change.
	qA, qG     *tensor.T32
	invA, invG *tensor.T32
	// aEpoch/gEpoch count refreshes of the A and G mirrors. They are
	// separate fields because the pipelined engine can refresh a layer's A
	// and G slots from concurrent record-consumer goroutines; each site
	// touches only its own counter.
	aEpoch, gEpoch uint64

	// recip caches the elementwise reciprocal denominator of Equation 14,
	// 1/(λ_G λ_A + γ) (or the π-split form), so the per-step elementwise
	// stage is a single float32 multiply. Rebuilt lazily when the epochs,
	// γ, or π under it change.
	recip      *tensor.T32
	recipEpoch uint64  // aEpoch+gEpoch at last rebuild (0 = never built)
	recipGamma float64 // γ at last rebuild
	recipPi    float64 // π at last rebuild (1 unless PiDamping)

	// Step workspaces: narrowed gradient, the two preconditioning
	// intermediates, and the float32 result widened into pcBuf.
	grad, wA, wB, pc *tensor.T32
	// Covariance workspaces: bias-augmented activation sample, output-grad
	// mirror, and the Gram product before widening.
	sample, g, cov *tensor.T32
}

// cov32Kernel computes dst = aᵀa in float32. Mirrors covKernel: tests swap
// in a reference kernel to isolate the Gram stage.
var cov32Kernel = linalg.SymMulT1Into32

// ensureF32 returns the layer's float32 state, allocating it on first use.
func (s *layerState) ensureF32() *layerF32 {
	if s.f32 == nil {
		s.f32 = &layerF32{}
	}
	return s.f32
}

// refreshF32A narrows the layer's updated A-side decomposition (eigenbasis
// or damped inverse) into its float32 mirror. Called wherever the float64
// slot is written: local decomposition, allgather consume, and broadcast
// consume. No-op under F64.
func (p *Preconditioner) refreshF32A(s *layerState) {
	if p.opts.Precision != F32 {
		return
	}
	f := s.ensureF32()
	if p.opts.Mode == InverseMode {
		n := s.invA.Rows()
		tensor.Ensure32(&f.invA, n, n).NarrowFrom(s.invA)
	} else {
		n := s.eigA.Q.Rows()
		tensor.Ensure32(&f.qA, n, n).NarrowFrom(s.eigA.Q)
	}
	f.aEpoch++
}

// refreshF32G is refreshF32A for the G-side decomposition.
func (p *Preconditioner) refreshF32G(s *layerState) {
	if p.opts.Precision != F32 {
		return
	}
	f := s.ensureF32()
	if p.opts.Mode == InverseMode {
		n := s.invG.Rows()
		tensor.Ensure32(&f.invG, n, n).NarrowFrom(s.invG)
	} else {
		n := s.eigG.Q.Rows()
		tensor.Ensure32(&f.qG, n, n).NarrowFrom(s.eigG.Q)
	}
	f.gEpoch++
}

// recip32 returns the cached reciprocal-denominator matrix for Equation 14,
// rebuilding it when the decompositions, γ, or π changed since the last
// build. Row r, column c holds 1/(λ_G[r]·λ_A[c] + γ) — or the π-split form
// 1/((λ_G[r]+γ_G)(λ_A[c]+γ_A)) — computed in float64 and rounded once.
func (p *Preconditioner) recip32(s *layerState, out, in int) *tensor.T32 {
	f := s.f32
	epoch := f.aEpoch + f.gEpoch
	pi := 1.0
	if p.opts.PiDamping {
		pi = s.pi
	}
	if f.recip != nil && f.recipEpoch == epoch && f.recipGamma == p.opts.Damping &&
		f.recipPi == pi && f.recip.Rows() == out && f.recip.Cols() == in {
		return f.recip
	}
	r := tensor.Ensure32(&f.recip, out, in)
	if p.opts.PiDamping {
		ga, gg := p.dampingSplit(s)
		for row := 0; row < out; row++ {
			vg := s.eigG.Values[row] + gg
			dst := r.Data[row*in : (row+1)*in]
			for c := 0; c < in; c++ {
				dst[c] = float32(1 / (vg * (s.eigA.Values[c] + ga)))
			}
		}
	} else {
		for row := 0; row < out; row++ {
			vg := s.eigG.Values[row]
			dst := r.Data[row*in : (row+1)*in]
			for c := 0; c < in; c++ {
				dst[c] = float32(1 / (vg*s.eigA.Values[c] + p.opts.Damping))
			}
		}
	}
	f.recipEpoch, f.recipGamma, f.recipPi = epoch, p.opts.Damping, pi
	return r
}

// preconditionOne32 is preconditionOne on the float32 kernel path: the
// gradient is narrowed once, the four matmuls of Equations 13–15 (or the
// two of Equation 10) run in float32 with float64 accumulation against the
// mirrored decompositions, and the result widens into the layer's float64
// pcBuf — so the KL clip, the MEM-OPT result broadcast, and SetCombinedGrad
// see an ordinary float64 tensor.
func (p *Preconditioner) preconditionOne32(s *layerState, grad *tensor.Tensor) *tensor.Tensor {
	out, in := grad.Rows(), grad.Cols()
	pc := tensor.Ensure(&s.pcBuf, out, in)
	f := s.ensureF32()
	g32 := tensor.Ensure32(&f.grad, out, in)
	g32.NarrowFrom(grad)
	if p.opts.Mode == InverseMode {
		if f.invA == nil || f.invG == nil {
			panic("kfac: precondition before inverse update")
		}
		t1 := tensor.Ensure32(&f.wA, out, in)
		tensor.MatMulInto32(t1, f.invG, g32)
		pc32 := tensor.Ensure32(&f.pc, out, in)
		tensor.MatMulInto32(pc32, t1, f.invA)
		pc32.WidenInto(pc)
		return pc
	}
	if f.qA == nil || f.qG == nil {
		panic("kfac: precondition before eigendecomposition update")
	}
	t1 := tensor.Ensure32(&f.wA, out, in)
	tensor.MatMulT1Into32(t1, f.qG, g32)
	v1 := tensor.Ensure32(&f.wB, out, in)
	tensor.MatMulInto32(v1, t1, f.qA)
	recip := p.recip32(s, out, in)
	for i, rv := range recip.Data {
		v1.Data[i] *= rv
	}
	t2 := t1 // wA no longer needed; reuse for Q_G × V₂
	tensor.MatMulInto32(t2, f.qG, v1)
	pc32 := tensor.Ensure32(&f.pc, out, in)
	tensor.MatMulT2Into32(pc32, t2, f.qA)
	pc32.WidenInto(pc)
	return pc
}

// computeCovState32 is computeCovState on the float32 kernel path: sample
// matrices are consumed directly from the layers' float32 captures when
// available (KFACCapturable32) or narrowed once from the float64 captures,
// the Gram products run through cov32Kernel, and the covariances widen into
// the float64 workspaces before the running-average Lerp — keeping A and G
// float64 and allreduce-compatible across mixed-precision and full-
// precision ranks.
func (p *Preconditioner) computeCovState32(s *layerState) {
	f := s.ensureF32()
	da, dg := FactorDims(s.layer)
	l32, _ := s.layer.(nn.KFACCapturable32)

	// --- A factor: bias-augmented, spatially scaled activation samples.
	var act32 *tensor.T32
	if l32 != nil {
		act32 = l32.CapturedActivation32()
	}
	if act32 == nil {
		act := s.layer.CapturedActivation()
		if act == nil {
			panic("kfac: ComputeCovA called without captured activation (is capture enabled?)")
		}
		act32 = tensor.Ensure32(&f.sample, act.Rows(), act.Cols())
		act32.NarrowFrom(act)
	}
	rows, cols := act32.Rows(), act32.Cols()
	spatial := s.layer.SpatialSize()
	batch := s.layer.BatchSize()
	scale := float32(1)
	if spatial > 1 {
		scale = float32(1 / float64(spatial))
	}
	d := cols
	if s.layer.HasBias() {
		d++
	}
	a := act32
	if s.layer.HasBias() || scale != 1 {
		// Building the augmented matrix in a second buffer also covers the
		// case where act32 aliases f.sample (the narrow fallback).
		a = tensor.Ensure32(&f.g, rows, d)
		for i := 0; i < rows; i++ {
			src := act32.Data[i*cols : (i+1)*cols]
			dst := a.Data[i*d : (i+1)*d]
			for j, v := range src {
				dst[j] = v * scale
			}
			if s.layer.HasBias() {
				dst[d-1] = scale
			}
		}
	}
	cov32 := tensor.Ensure32(&f.cov, da, da)
	cov32Kernel(cov32, a)
	covA := tensor.Ensure(&s.covA, da, da)
	cov32.WidenInto(covA)
	covA.Scale(1 / float64(batch))

	// --- G factor: output-gradient samples, scaled by N·S.
	var g32 *tensor.T32
	if l32 != nil {
		g32 = l32.CapturedOutputGrad32()
	}
	if g32 == nil {
		g := s.layer.CapturedOutputGrad()
		if g == nil {
			panic("kfac: ComputeCovG called without captured output gradient")
		}
		g32 = tensor.Ensure32(&f.g, g.Rows(), g.Cols())
		g32.NarrowFrom(g)
	}
	cov32G := tensor.Ensure32(&f.cov, dg, dg)
	cov32Kernel(cov32G, g32)
	covG := tensor.Ensure(&s.covG, dg, dg)
	cov32G.WidenInto(covG)
	covG.Scale(float64(batch) * float64(spatial))

	if s.A == nil {
		s.A, s.G = covA.Clone(), covG.Clone()
	} else {
		s.A.Lerp(p.opts.FactorDecay, covA)
		s.G.Lerp(p.opts.FactorDecay, covG)
	}
}

// f32MemElems counts the float32 elements resident in a layer's mixed-
// precision state, for factorMemBytes.
func (s *layerState) f32MemElems() int64 {
	f := s.f32
	if f == nil {
		return 0
	}
	var elems int64
	for _, t := range []*tensor.T32{
		f.qA, f.qG, f.invA, f.invG, f.recip,
		f.grad, f.wA, f.wB, f.pc, f.sample, f.g, f.cov,
	} {
		if t != nil {
			elems += int64(t.Len())
		}
	}
	return elems
}
