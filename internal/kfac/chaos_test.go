package kfac

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// chaosStepTrace is stepTrace over a chaos-wrapped in-process world.
func chaosStepTrace(t *testing.T, p int, cfg comm.ChaosConfig, opts Options, steps int) [][]*tensor.Tensor {
	t.Helper()
	fab := comm.NewChaosFabric(comm.NewInprocFabric(p), p, cfg)
	out := make([][]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out[r] = stepTrace(t, comm.NewCommunicator(fab.Endpoint(r)), opts, steps)
		}(r)
	}
	wg.Wait()
	return out
}

// TestEnginesBitIdenticalUnderLatencyChaos is the acceptance property for
// the chaos layer: an injected-latency-only schedule perturbs timing —
// reordering completions of the pipelined engine's overlapped collectives
// — but both engines must still produce parameters bit-identical to a
// chaos-free synchronous run.
func TestEnginesBitIdenticalUnderLatencyChaos(t *testing.T) {
	const p = 3
	const steps = 6
	base := Options{FactorUpdateFreq: 2, InvUpdateFreq: 4}
	chaosCfg := comm.ChaosConfig{
		Seed:       17,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 200 * time.Microsecond,
	}

	want := chaosStepTrace(t, p, comm.ChaosConfig{}, base, steps) // clean sync reference

	pipeOpts := base
	pipeOpts.Engine = EnginePipelined
	for name, got := range map[string][][]*tensor.Tensor{
		"sync under latency chaos":      chaosStepTrace(t, p, chaosCfg, base, steps),
		"pipelined under latency chaos": chaosStepTrace(t, p, chaosCfg, pipeOpts, steps),
		"pipelined, different seed": chaosStepTrace(t, p,
			comm.ChaosConfig{Seed: 99, MinLatency: time.Microsecond, MaxLatency: 500 * time.Microsecond},
			pipeOpts, steps),
	} {
		for r := 0; r < p; r++ {
			for i := range want[r] {
				if !want[r][i].Equal(got[r][i], 0) {
					t.Errorf("%s: rank %d layer %d differs from clean sync run (exact comparison)", name, r, i)
				}
			}
		}
	}
}

// TestRebindToSmallerWorld: after an elastic resize the preconditioner
// must re-place every factor for the new world and keep stepping.
func TestRebindToSmallerWorld(t *testing.T) {
	const p = 2
	fab := comm.NewInprocFabric(p)
	opts := Options{FactorUpdateFreq: 1, InvUpdateFreq: 1}

	precs := make([]*Preconditioner, p)
	nets := make([]*nn.Sequential, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			nets[r] = buildTinyNet(42)
			precs[r] = NewFromOptions(nets[r], comm.NewCommunicator(fab.Endpoint(r)), opts)
			for i := 0; i < 3; i++ {
				runStep(nets[r], int64(2000+i), 4)
				if err := precs[r].Step(0.1); err != nil {
					t.Errorf("rank %d step %d: %v", r, i, err)
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Before the resize, placement spans both workers.
	spread := false
	for _, s := range precs[0].states {
		if s.aWorker != 0 || s.gWorker != 0 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("expected some factors placed on worker 1 before the resize")
	}

	// Rank 1 dies; rank 0 rebinds to a single-rank world. Every factor
	// must be re-placed onto worker 0 and stepping must proceed without
	// the (now impossible) cross-rank allgather.
	survivor := precs[0]
	survivor.Rebind(nil)
	for _, s := range survivor.states {
		if s.aWorker != 0 || s.gWorker != 0 {
			t.Fatalf("factor still placed on a dead worker after Rebind: A→%d G→%d", s.aWorker, s.gWorker)
		}
	}
	runStep(nets[0], 3000, 4)
	if err := survivor.Step(0.1); err != nil {
		t.Fatalf("post-rebind step: %v", err)
	}
	precs[1].Close()
	survivor.Close()
}

// TestRebindLayerWiseClearsDecompositions: LayerWise keeps decompositions
// only on their owner, so a resize must drop them and force a rebuild at
// the next step.
func TestRebindLayerWiseClearsDecompositions(t *testing.T) {
	net := buildTinyNet(42)
	prec := NewFromOptions(net, nil, Options{Strategy: LayerWise, FactorUpdateFreq: 1, InvUpdateFreq: 1})
	defer prec.Close()
	runStep(net, 1, 4)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	if prec.states[0].eigA == nil {
		t.Fatal("expected decompositions after the first step")
	}
	prec.Rebind(nil)
	for i, s := range prec.states {
		if s.eigA != nil || s.eigG != nil || s.invA != nil || s.invG != nil {
			t.Fatalf("layer %d: stale decomposition survived a LayerWise rebind", i)
		}
	}
	if prec.StepCount() != 0 {
		t.Fatalf("step counter %d after LayerWise rebind, want 0 (forces rebuild)", prec.StepCount())
	}
	// The very next step must rebuild decompositions before preconditioning.
	runStep(net, 2, 4)
	if err := prec.Step(0.1); err != nil {
		t.Fatalf("post-rebind step: %v", err)
	}
}
