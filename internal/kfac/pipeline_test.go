package kfac

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// stepTrace runs several preconditioned steps on a fresh tiny net and
// returns every layer's final gradient.
func stepTrace(t *testing.T, c *comm.Communicator, opts Options, steps int) []*tensor.Tensor {
	t.Helper()
	net := buildTinyNet(42)
	prec := NewFromOptions(net, c, opts)
	defer prec.Close()
	for i := 0; i < steps; i++ {
		runStep(net, int64(1000+i), 4)
		if err := prec.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	var out []*tensor.Tensor
	for _, l := range nn.CapturableLayers(net) {
		out = append(out, l.CombinedGrad().Clone())
	}
	return out
}

func TestPipelinedMatchesSyncSingleProcess(t *testing.T) {
	for _, mode := range []Mode{EigenMode, InverseMode} {
		t.Run(mode.String(), func(t *testing.T) {
			base := Options{Mode: mode, FactorUpdateFreq: 1, InvUpdateFreq: 2}
			syncGrads := stepTrace(t, nil, base, 5)
			pipeOpts := base
			pipeOpts.Engine = EnginePipelined
			pipeGrads := stepTrace(t, nil, pipeOpts, 5)
			for i := range syncGrads {
				if !syncGrads[i].Equal(pipeGrads[i], 0) {
					t.Errorf("layer %d: pipelined gradient differs from sync (exact comparison)", i)
				}
			}
		})
	}
}

func TestPipelinedMatchesSyncDistributed(t *testing.T) {
	for _, strategy := range []Strategy{RoundRobin, SizeGreedy, LayerWise} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			const p = 3
			run := func(engine Engine) [][]*tensor.Tensor {
				fab := comm.NewInprocFabric(p)
				out := make([][]*tensor.Tensor, p)
				var wg sync.WaitGroup
				for r := 0; r < p; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						out[r] = stepTrace(t, comm.NewCommunicator(fab.Endpoint(r)), Options{
							Strategy: strategy, Engine: engine,
							FactorUpdateFreq: 2, InvUpdateFreq: 4,
						}, 6)
					}(r)
				}
				wg.Wait()
				return out
			}
			want := run(EngineSync)
			got := run(EnginePipelined)
			for r := 0; r < p; r++ {
				for i := range want[r] {
					if !want[r][i].Equal(got[r][i], 0) {
						t.Errorf("rank %d layer %d: pipelined differs from sync", r, i)
					}
				}
			}
		})
	}
}

func TestPipelinedTinyFusionBudget(t *testing.T) {
	// A fusion budget smaller than any factor forces chunks to launch
	// mid-Add-sequence, so chunk waiters run while the issuer is still
	// registering later layers — the regression case for the tensor→layer
	// map race (resolved on the issuer goroutine; run with -race). Results
	// must still match the sync engine exactly.
	const p = 2
	run := func(engine Engine) [][]*tensor.Tensor {
		fab := comm.NewInprocFabric(p)
		out := make([][]*tensor.Tensor, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				out[r] = stepTrace(t, comm.NewCommunicator(fab.Endpoint(r)), Options{
					Engine: engine, FactorUpdateFreq: 1, InvUpdateFreq: 1,
					FusionBytes: 1, // every tensor becomes its own chunk
				}, 3)
			}(r)
		}
		wg.Wait()
		return out
	}
	want := run(EngineSync)
	got := run(EnginePipelined)
	for r := 0; r < p; r++ {
		for i := range want[r] {
			if !want[r][i].Equal(got[r][i], 0) {
				t.Errorf("rank %d layer %d: pipelined differs from sync under tiny fusion budget", r, i)
			}
		}
	}
}

func TestPipelinedPiDampingMatchesSync(t *testing.T) {
	base := Options{FactorUpdateFreq: 1, InvUpdateFreq: 1, PiDamping: true}
	syncGrads := stepTrace(t, nil, base, 3)
	pipe := base
	pipe.Engine = EnginePipelined
	pipeGrads := stepTrace(t, nil, pipe, 3)
	for i := range syncGrads {
		if !syncGrads[i].Equal(pipeGrads[i], 0) {
			t.Errorf("layer %d: π-damped pipelined gradient differs from sync", i)
		}
	}
}

func TestPipelinedDecompOnlyIteration(t *testing.T) {
	// InvUpdateFreq=1 with FactorUpdateFreq=2 produces iterations where the
	// decomposition refreshes without a factor update — the pipeline must
	// not wait on factor events that never fire.
	opts := Options{FactorUpdateFreq: 2, InvUpdateFreq: 1, Engine: EnginePipelined}
	grads := stepTrace(t, nil, opts, 4)
	for i, g := range grads {
		if g.HasNaN() {
			t.Errorf("layer %d gradient has NaN", i)
		}
	}
}

func TestPipelinedStatsRecordOverlap(t *testing.T) {
	net := buildTinyNet(42)
	prec := NewFromOptions(net, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1, Engine: EnginePipelined})
	defer prec.Close()
	runStep(net, 1, 8)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	snap := prec.Stats().Snapshot()
	if snap.PipelineUpdates != 1 {
		t.Errorf("PipelineUpdates = %d, want 1", snap.PipelineUpdates)
	}
	if snap.PipelineWall <= 0 || snap.PipelineWork <= 0 {
		t.Errorf("pipeline timings not recorded: wall=%v work=%v", snap.PipelineWall, snap.PipelineWork)
	}
	if snap.FactorUpdates != 1 || snap.EigUpdates != 1 {
		t.Errorf("update counters = %d/%d, want 1/1", snap.FactorUpdates, snap.EigUpdates)
	}
	if s := prec.Stats().String(); s == "" {
		t.Error("empty stats string")
	}
}

func TestPipelinedCloseAndReuse(t *testing.T) {
	net := buildTinyNet(42)
	prec := NewFromOptions(net, nil, Options{FactorUpdateFreq: 1, InvUpdateFreq: 1, Engine: EnginePipelined})
	runStep(net, 2, 4)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	prec.Close()
	// Stepping after Close recreates the pool.
	runStep(net, 3, 4)
	if err := prec.Step(0.1); err != nil {
		t.Fatal(err)
	}
	prec.Close()
	prec.Close() // idempotent
}

func TestEngineString(t *testing.T) {
	if EngineSync.String() == EnginePipelined.String() {
		t.Error("engines should print differently")
	}
}
