// Checkpointing: trains with K-FAC for a few epochs while an OnCheckpoint
// hook snapshots the model, "crashes", restores into a fresh model, and
// verifies the restored model reproduces the saved validation accuracy
// before continuing training — the operational workflow long
// ImageNet-scale runs need, expressed through the Session hook registry
// instead of a hand-rolled save step.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	cfg := data.CIFARLike(11)
	cfg.Train, cfg.Test, cfg.Size, cfg.Noise = 512, 256, 16, 0.8
	train, test := data.GenerateSynthetic(cfg)

	build := func(seed int64) *nn.Sequential {
		return models.BuildCIFARResNet(1, 4, 3, 10, rand.New(rand.NewSource(seed)))
	}
	path := filepath.Join(os.TempDir(), "kfac-demo.ckpt")
	baseOpts := func(epochs int) []trainer.SessionOption {
		return []trainer.SessionOption{
			trainer.WithEpochs(epochs),
			trainer.WithBatchPerRank(32),
			trainer.WithLRSchedule(optim.LRSchedule{BaseLR: 0.05, WarmupEpochs: 1}),
			trainer.WithMomentum(0.9),
			trainer.WithKFAC(kfac.WithFactorUpdateFreq(1), kfac.WithInvUpdateFreq(5)),
			trainer.WithSeed(11),
			trainer.WithLogger(os.Stdout),
		}
	}

	fmt.Println("=== phase 1: train 3 epochs, checkpointing at every epoch ===")
	net := build(1)
	s, err := trainer.NewSession(net, nil, train, test, append(baseOpts(3),
		trainer.WithCheckpointEvery(1),
		trainer.OnCheckpoint(func(s *trainer.Session, info trainer.CheckpointInfo) error {
			ck := checkpoint.Snapshot(s.Net(), info.Epoch+1, info.Iterations)
			if err := ck.Save(path); err != nil {
				return fmt.Errorf("checkpoint at epoch %d: %w", info.Epoch, err)
			}
			fmt.Printf("  [checkpoint] epoch %d, step %d → %s\n", info.Epoch, info.Iterations, path)
			return nil
		}))...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s at val acc %.2f%%\n\n", path, res.FinalValAcc*100)

	fmt.Println("=== phase 2: restore into a fresh model ===")
	restored := build(999) // different init — fully overwritten by restore
	loaded, err := checkpoint.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := loaded.Restore(restored); err != nil {
		log.Fatal(err)
	}
	acc, err := trainer.Evaluate(restored, nil, test, 32, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored model val acc %.2f%% (checkpoint recorded epoch %d, step %d)\n\n",
		acc*100, loaded.Epoch, loaded.Step)
	if acc != res.FinalValAcc {
		log.Fatalf("restore mismatch: %.4f vs %.4f", acc, res.FinalValAcc)
	}

	fmt.Println("=== phase 3: continue training from the checkpoint ===")
	s2, err := trainer.NewSession(restored, nil, train, test, baseOpts(2)...)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := s2.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed training reached %.2f%% (from %.2f%%)\n",
		res2.FinalValAcc*100, acc*100)
	os.Remove(path)
}
