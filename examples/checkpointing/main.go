// Checkpointing: trains with K-FAC for a few epochs, saves a checkpoint,
// "crashes", restores into a fresh model, and verifies the restored model
// reproduces the saved validation accuracy before continuing training —
// the operational workflow long ImageNet-scale runs need.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	cfg := data.CIFARLike(11)
	cfg.Train, cfg.Test, cfg.Size, cfg.Noise = 512, 256, 16, 0.8
	train, test := data.GenerateSynthetic(cfg)

	build := func(seed int64) *nn.Sequential {
		return models.BuildCIFARResNet(1, 4, 3, 10, rand.New(rand.NewSource(seed)))
	}
	tc := trainer.Config{
		Epochs:       3,
		BatchPerRank: 32,
		LR:           optim.LRSchedule{BaseLR: 0.05, WarmupEpochs: 1},
		Momentum:     0.9,
		KFAC:         &kfac.Options{FactorUpdateFreq: 1, InvUpdateFreq: 5},
		Seed:         11,
		Log:          os.Stdout,
	}

	fmt.Println("=== phase 1: train 3 epochs, then checkpoint ===")
	net := build(1)
	res, err := trainer.TrainRank(net, nil, train, test, tc)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "kfac-demo.ckpt")
	ck := checkpoint.Snapshot(net, tc.Epochs, res.Iterations)
	if err := ck.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s at val acc %.2f%%\n\n", path, res.FinalValAcc*100)

	fmt.Println("=== phase 2: restore into a fresh model ===")
	restored := build(999) // different init — fully overwritten by restore
	loaded, err := checkpoint.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := loaded.Restore(restored); err != nil {
		log.Fatal(err)
	}
	acc, err := trainer.Evaluate(restored, nil, test, 32, tc.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored model val acc %.2f%% (checkpoint recorded epoch %d, step %d)\n\n",
		acc*100, loaded.Epoch, loaded.Step)
	if acc != res.FinalValAcc {
		log.Fatalf("restore mismatch: %.4f vs %.4f", acc, res.FinalValAcc)
	}

	fmt.Println("=== phase 3: continue training from the checkpoint ===")
	tc.Epochs = 2
	res2, err := trainer.TrainRank(restored, nil, train, test, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed training reached %.2f%% (from %.2f%%)\n",
		res2.FinalValAcc*100, acc*100)
	os.Remove(path)
}
