// CIFAR-style comparison: trains the same miniature ResNet with plain SGD
// and with distributed K-FAC (4 in-process workers, round-robin factor
// placement) on the synthetic CIFAR stand-in, reproducing the qualitative
// content of the paper's Figure 4 / Table II: K-FAC matches SGD's accuracy
// in fewer epochs. Both runs go through RunSessions, the Session-API
// multi-rank runner.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	const (
		world      = 4
		batch      = 32
		sgdEpochs  = 8
		kfacEpochs = 5
	)
	ctx := context.Background()
	cfg := data.CIFARLike(7)
	cfg.Train, cfg.Test = 1024, 512
	train, test := data.GenerateSynthetic(cfg)
	build := func(rng *rand.Rand) *nn.Sequential {
		return models.BuildCIFARResNet(1, 8, 3, 10, rng)
	}
	schedule := func(epochs int) optim.LRSchedule {
		return optim.LRSchedule{BaseLR: 0.05 * world, WarmupEpochs: 1,
			Milestones: []int{epochs * 2 / 3}, Factor: 0.1}
	}
	base := func(epochs int) []trainer.SessionOption {
		return []trainer.SessionOption{
			trainer.WithEpochs(epochs),
			trainer.WithBatchPerRank(batch),
			trainer.WithLRSchedule(schedule(epochs)),
			trainer.WithMomentum(0.9),
			trainer.WithSeed(7),
			trainer.WithLogger(os.Stdout),
		}
	}

	fmt.Printf("=== SGD, %d workers, %d epochs ===\n", world, sgdEpochs)
	sgdRes, err := trainer.RunSessions(ctx, world, build, train, test, base(sgdEpochs)...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n=== K-FAC (round-robin factors), %d workers, %d epochs ===\n", world, kfacEpochs)
	kfRes, err := trainer.RunSessions(ctx, world, build, train, test, append(base(kfacEpochs),
		trainer.WithKFAC(
			kfac.WithStrategy(kfac.RoundRobin),
			kfac.WithDamping(1e-3),
			kfac.WithFactorUpdateFreq(1),
			kfac.WithInvUpdateFreq(10)))...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSGD   : best val %.2f%% in %d epochs (%d iterations)\n",
		sgdRes[0].BestValAcc*100, sgdEpochs, sgdRes[0].Iterations)
	fmt.Printf("K-FAC : best val %.2f%% in %d epochs (%d iterations)\n",
		kfRes[0].BestValAcc*100, kfacEpochs, kfRes[0].Iterations)
	fmt.Println("expected shape (paper Fig. 4): K-FAC reaches SGD-level accuracy in fewer epochs")
}
