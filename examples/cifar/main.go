// CIFAR-style comparison: trains the same miniature ResNet with plain SGD
// and with distributed K-FAC (4 in-process workers, round-robin factor
// placement) on the synthetic CIFAR stand-in, reproducing the qualitative
// content of the paper's Figure 4 / Table II: K-FAC matches SGD's accuracy
// in fewer epochs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	const (
		world      = 4
		batch      = 32
		sgdEpochs  = 8
		kfacEpochs = 5
	)
	cfg := data.CIFARLike(7)
	cfg.Train, cfg.Test = 1024, 512
	train, test := data.GenerateSynthetic(cfg)
	build := func(rng *rand.Rand) *nn.Sequential {
		return models.BuildCIFARResNet(1, 8, 3, 10, rng)
	}

	base := trainer.Config{
		BatchPerRank: batch,
		Momentum:     0.9,
		Seed:         7,
		Log:          os.Stdout,
	}

	fmt.Printf("=== SGD, %d workers, %d epochs ===\n", world, sgdEpochs)
	sgdCfg := base
	sgdCfg.Epochs = sgdEpochs
	sgdCfg.LR = optim.LRSchedule{BaseLR: 0.05 * world, WarmupEpochs: 1,
		Milestones: []int{sgdEpochs * 2 / 3}, Factor: 0.1}
	sgdRes, err := trainer.RunDistributed(world, build, train, test, sgdCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n=== K-FAC (round-robin factors), %d workers, %d epochs ===\n", world, kfacEpochs)
	kfCfg := base
	kfCfg.Epochs = kfacEpochs
	kfCfg.LR = optim.LRSchedule{BaseLR: 0.05 * world, WarmupEpochs: 1,
		Milestones: []int{kfacEpochs * 2 / 3}, Factor: 0.1}
	kfCfg.KFAC = &kfac.Options{
		Strategy:         kfac.RoundRobin,
		Damping:          1e-3,
		FactorUpdateFreq: 1,
		InvUpdateFreq:    10,
	}
	kfRes, err := trainer.RunDistributed(world, build, train, test, kfCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSGD   : best val %.2f%% in %d epochs (%d iterations)\n",
		sgdRes[0].BestValAcc*100, sgdEpochs, sgdRes[0].Iterations)
	fmt.Printf("K-FAC : best val %.2f%% in %d epochs (%d iterations)\n",
		kfRes[0].BestValAcc*100, kfacEpochs, kfRes[0].Iterations)
	fmt.Println("expected shape (paper Fig. 4): K-FAC reaches SGD-level accuracy in fewer epochs")
}
