// Scaling study: evaluates the calibrated Frontera/V100 performance model
// over the paper's full sweep (Figures 7–9, Table IV): ResNet-50/101/152 at
// 16–256 GPUs under SGD, K-FAC-lw and K-FAC-opt, plus the size-greedy
// placement the paper proposes as future work.
package main

import (
	"fmt"

	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/simulate"
)

func main() {
	cluster := simulate.DefaultV100Cluster()
	scales := []int{16, 32, 64, 128, 256}

	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		cat, err := models.CatalogByName(name)
		if err != nil {
			panic(err)
		}
		m := simulate.NewModel(cluster, simulate.ImageNetWorkload(cat))
		fmt.Printf("=== %s (%.1fM params) — time-to-solution, minutes ===\n",
			name, float64(cat.TotalParams())/1e6)
		fmt.Printf("%-6s  %9s  %9s  %9s  %9s  %11s\n",
			"GPUs", "SGD", "K-FAC-lw", "K-FAC-opt", "greedy", "opt vs SGD")
		for _, p := range scales {
			sgd := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 90})
			lw := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.LayerWise})
			opt := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.RoundRobin})
			gr := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.SizeGreedy})
			fmt.Printf("%-6d  %9.0f  %9.0f  %9.0f  %9.0f  %+10.1f%%\n",
				p, sgd, lw, opt, gr, 100*(sgd-opt)/sgd)
		}
		fmt.Println()
	}
	fmt.Println("paper shapes: opt beats SGD by ~18-25% (R50), deteriorating with model size;")
	fmt.Println("R152 crosses over at 256 GPUs; lw always trails opt.")
}
