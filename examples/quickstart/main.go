// Quickstart: train a small CNN on the synthetic CIFAR stand-in with K-FAC
// preconditioning in a single process — the minimal end-to-end use of the
// library, mirroring the paper's Listing 1:
//
//	build model → build optimizer → build KFAC preconditioner →
//	for each batch: forward, loss, backward, (allreduce), KFAC.Step, SGD.Step
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// Synthetic 10-class image dataset (stand-in for CIFAR-10; see DESIGN.md).
	cfg := data.CIFARLike(1)
	cfg.Train, cfg.Test, cfg.Size, cfg.Noise = 512, 256, 16, 0.8
	train, test := data.GenerateSynthetic(cfg)

	// A miniature ResNet (same topology family as the paper's ResNet-32).
	net := models.BuildCIFARResNet(1, 4, 3, 10, rng)
	fmt.Printf("model: %s with %d parameters\n", net.Name(), nn.ParamCount(net))

	// Optimizer + K-FAC preconditioner (Listing 1, lines 3–5).
	opt := optim.NewSGD(net.Params(), 0.05, 0.9, 0, false)
	prec := kfac.New(net, nil, kfac.Options{
		Damping:          1e-3,
		FactorUpdateFreq: 1,
		InvUpdateFreq:    10,
	})
	loss := nn.CrossEntropy{}

	const (
		epochs = 4
		batch  = 32
	)
	sampler := data.ShardSampler{N: train.Len(), Rank: 0, World: 1, Seed: 1}
	for epoch := 0; epoch < epochs; epoch++ {
		var lossSum float64
		bs := data.Batches(train, sampler.EpochIndices(epoch), batch)
		for _, b := range bs {
			out := net.Forward(b.X, true)
			l, grad := loss.Loss(out, b.Labels)
			lossSum += l
			nn.ZeroGrads(net)
			net.Backward(grad)

			// Listing 1, lines 15–18: precondition, then step.
			if err := prec.Step(opt.LR()); err != nil {
				log.Fatalf("kfac step: %v", err)
			}
			opt.Step()
		}

		// Validation accuracy.
		var correct, total float64
		for _, b := range data.Batches(test, data.ShardSampler{N: test.Len(), World: 1, Seed: 2}.EpochIndices(0), batch) {
			out := net.Forward(b.X, false)
			correct += nn.Accuracy(out, b.Labels) * float64(len(b.Labels))
			total += float64(len(b.Labels))
		}
		fmt.Printf("epoch %d  train-loss %.4f  val-acc %.2f%%\n",
			epoch+1, lossSum/float64(len(bs)), 100*correct/total)
	}
}
