// Quickstart: train a small CNN on the synthetic CIFAR stand-in with K-FAC
// preconditioning in a single process — the minimal end-to-end use of the
// library. The paper's Listing 1 loop (synchronize → precondition → step)
// is the Session's fixed skeleton; everything else attaches through
// functional options and hooks:
//
//	build model → NewSession(net, …, WithKFAC(…), OnEpochEnd(…)) → Run(ctx)
//
// The flags exist so CI can smoke-run the example to completion in seconds:
//
//	go run ./examples/quickstart -epochs 1 -train 128 -test 64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	var (
		epochs    = flag.Int("epochs", 4, "training epochs")
		batch     = flag.Int("batch", 32, "mini-batch size")
		trainN    = flag.Int("train", 512, "training examples")
		testN     = flag.Int("test", 256, "test examples")
		pipelined = flag.Bool("pipelined", false, "use the pipelined K-FAC step engine")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(1))

	// Synthetic 10-class image dataset (stand-in for CIFAR-10; see DESIGN.md).
	cfg := data.CIFARLike(1)
	cfg.Train, cfg.Test, cfg.Size, cfg.Noise = *trainN, *testN, 16, 0.8
	train, test := data.GenerateSynthetic(cfg)

	// A miniature ResNet (same topology family as the paper's ResNet-32).
	net := models.BuildCIFARResNet(1, 4, 3, 10, rng)
	fmt.Printf("model: %s with %d parameters\n", net.Name(), nn.ParamCount(net))

	// Session = optimizer + K-FAC preconditioner + hooks (Listing 1,
	// lines 3–5). The default optimizer is SGD shaped by WithMomentum;
	// swap it with trainer.WithOptimizer for LARS/Adam/custom rules.
	kopts := []kfac.Option{
		kfac.WithDamping(1e-3),
		kfac.WithFactorUpdateFreq(1),
		kfac.WithInvUpdateFreq(10),
	}
	if *pipelined {
		kopts = append(kopts, kfac.WithEngine(kfac.EnginePipelined))
	}
	s, err := trainer.NewSession(net, nil, train, test,
		trainer.WithEpochs(*epochs),
		trainer.WithBatchPerRank(*batch),
		trainer.WithLRSchedule(optim.LRSchedule{BaseLR: 0.05}),
		trainer.WithMomentum(0.9),
		trainer.WithSeed(1),
		trainer.WithKFAC(kopts...),
		trainer.OnEpochEnd(func(s *trainer.Session, e trainer.EpochStats) error {
			fmt.Printf("epoch %d  train-loss %.4f  val-acc %.2f%%\n",
				e.Epoch+1, e.TrainLoss, 100*e.ValAcc)
			return nil
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("done: best val-acc %.2f%% over %d iterations\n",
		100*res.BestValAcc, res.Iterations)
}
