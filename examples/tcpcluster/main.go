// TCP cluster demo: runs distributed K-FAC training across *separate OS
// processes* connected by the TCP transport — the closest this repository
// comes to the paper's multi-node Horovod deployment.
//
// Run without flags to launch a 3-process world on localhost (the parent
// re-executes itself once per rank):
//
//	go run ./examples/tcpcluster
//
// Or start ranks manually across machines:
//
//	tcpcluster -rank 0 -addrs host0:7000,host1:7000,host2:7000
//	tcpcluster -rank 1 -addrs host0:7000,host1:7000,host2:7000
//	tcpcluster -rank 2 -addrs host0:7000,host1:7000,host2:7000
//
// Every rank runs a Session under a SIGINT/SIGTERM-cancelled context: an
// interrupt on ANY rank propagates through the cancellation-consensus
// collective, so all ranks stop together at the same iteration boundary
// even though their local signals arrive at different times (or not at
// all).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	var (
		rank  = flag.Int("rank", -1, "this process's rank; -1 spawns a local world")
		addrs = flag.String("addrs", "", "comma-separated rank addresses")
		world = flag.Int("world", 3, "world size when spawning locally")
	)
	flag.Parse()

	if *rank < 0 {
		if err := spawnLocalWorld(*world); err != nil {
			log.Fatal(err)
		}
		return
	}
	// Run the rank through a function that returns instead of calling
	// log.Fatal, so the deferred transport Close always executes: an early
	// error (failed join, training failure) must not strand the listener
	// or the per-peer reader goroutines while the process lingers.
	if err := runRank(*rank, strings.Split(*addrs, ",")); err != nil {
		log.Fatalf("rank %d: %v", *rank, err)
	}
}

// spawnLocalWorld reserves loopback ports and re-executes this binary once
// per rank, streaming rank 0's output. If any rank fails — including
// failing to start — every other rank is terminated before returning, so
// an early error never leaves orphan processes holding ports.
func spawnLocalWorld(world int) error {
	addrs := make([]string, world)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	fmt.Printf("spawning %d local ranks: %v\n", world, addrs)
	procs := make([]*exec.Cmd, 0, world)
	// killExcept terminates every started rank but `except` (-1 = all).
	// Kill on an already-exited process is a no-op.
	killExcept := func(except int) {
		for q, p := range procs {
			if q != except && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}
	for r := 0; r < world; r++ {
		cmd := exec.Command(os.Args[0],
			"-rank", fmt.Sprint(r), "-addrs", strings.Join(addrs, ","))
		if r == 0 {
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			killExcept(-1)
			for _, p := range procs {
				_ = p.Wait()
			}
			return fmt.Errorf("spawn rank %d: %v", r, err)
		}
		procs = append(procs, cmd)
	}
	var firstErr error
	for r, p := range procs {
		if err := p.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d failed: %v", r, err)
			// Siblings of a dead rank block forever in collectives; put
			// them down rather than hanging the parent (the loop reaps
			// them on its remaining iterations).
			killExcept(r)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	fmt.Println("all ranks finished")
	return nil
}

// runRank joins the TCP world and trains with distributed K-FAC under a
// signal-cancelled context.
func runRank(rank int, addrs []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fab, err := comm.NewTCPFabric(rank, addrs, 10*time.Second)
	if err != nil {
		return err
	}
	defer fab.Close()
	c := comm.NewCommunicator(fab)

	cfg := data.CIFARLike(3)
	cfg.Train, cfg.Test, cfg.Size = 512, 256, 16
	train, test := data.GenerateSynthetic(cfg)

	net := models.BuildCIFARResNet(1, 4, 3, 10, rand.New(rand.NewSource(99)))
	opts := []trainer.SessionOption{
		trainer.WithEpochs(3),
		trainer.WithBatchPerRank(16),
		trainer.WithLRSchedule(optim.LRSchedule{
			BaseLR: 0.05 * float64(len(addrs)), WarmupEpochs: 1,
			Milestones: []int{2}, Factor: 0.1,
		}),
		trainer.WithMomentum(0.9),
		trainer.WithKFAC(
			kfac.WithStrategy(kfac.RoundRobin),
			kfac.WithDamping(1e-3),
			kfac.WithFactorUpdateFreq(1),
			kfac.WithInvUpdateFreq(5)),
		trainer.WithSeed(3),
	}
	if rank == 0 {
		opts = append(opts, trainer.WithLogger(os.Stdout))
		fmt.Printf("rank 0: %d-rank TCP world connected, training...\n", len(addrs))
	}
	s, err := trainer.NewSession(net, c, train, test, opts...)
	if err != nil {
		return err
	}
	res, err := s.Run(ctx)
	if errors.Is(err, context.Canceled) {
		if rank == 0 {
			fmt.Printf("rank 0: interrupted after %d iterations; all ranks stopped at the same boundary\n",
				res.Iterations)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if rank == 0 {
		fmt.Printf("rank 0: final val acc %.2f%% over %d iterations\n",
			res.FinalValAcc*100, res.Iterations)
	}
	return nil
}
