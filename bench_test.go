// Top-level benchmark harness: one benchmark per paper table/figure (each
// delegates to internal/experiments at smoke scale and reports wall time),
// plus micro-benchmarks of the kernels whose costs the performance model is
// built from (matmul, eigendecomposition, ring allreduce, conv forward,
// K-FAC preconditioner step).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or run individual artifacts at full scale with cmd/kfac-bench.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/kfac"
	"repro/internal/linalg"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// benchExperiment runs a registered experiment at smoke scale once per
// benchmark iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper artifacts — Tables I–VI and Figures 4–10.

func BenchmarkTable1InverseVsEigen(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2AccuracyVsGPUs(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3UpdateFreq(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkTable4ImprovementSummary(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5StageProfile(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkTable6WorkerSpeedup(b *testing.B)      { benchExperiment(b, "table6") }
func BenchmarkFig4CIFARCurves(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5ImageNetCurves(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6LastEpochs(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7ResNet50Scaling(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8ResNet101Scaling(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9ResNet152Scaling(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10FactorTime(b *testing.B)          { benchExperiment(b, "fig10") }

// Ablations beyond the paper's tables.

func BenchmarkAblationPlacement(b *testing.B) { benchExperiment(b, "ablation-placement") }
func BenchmarkAblationFusion(b *testing.B)    { benchExperiment(b, "ablation-fusion") }
func BenchmarkPipelineProfile(b *testing.B)   { benchExperiment(b, "pipeline") }

// Kernel micro-benchmarks.

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := tensor.Randn(rng, 1, n, n)
			y := tensor.Randn(rng, 1, n, n)
			dst := tensor.New(n, n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, x, y)
			}
		})
	}
}

func BenchmarkSymEig(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			m := tensor.Randn(rng, 1, n, n)
			spd := tensor.MatMulT1(m, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.SymEig(spd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExplicitInverse(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			m := tensor.Randn(rng, 1, n, n)
			spd := tensor.MatMulT1(m, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.InverseDamped(spd, 1e-3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRingAllreduce(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{1 << 10, 1 << 16} {
			b.Run(fmt.Sprintf("p%d_n%d", p, n), func(b *testing.B) {
				fab := comm.NewInprocFabric(p)
				comms := make([]*comm.Communicator, p)
				for r := 0; r < p; r++ {
					comms[r] = comm.NewCommunicator(fab.Endpoint(r))
				}
				bufs := make([][]float64, p)
				for r := range bufs {
					bufs[r] = make([]float64, n)
				}
				b.SetBytes(int64(8 * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for r := 0; r < p; r++ {
						wg.Add(1)
						go func(r int) {
							defer wg.Done()
							if err := comms[r].AllreduceSum(bufs[r]); err != nil {
								b.Error(err)
							}
						}(r)
					}
					wg.Wait()
				}
			})
		}
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	conv := nn.NewConv2D("c", 16, 32, 3, 1, 1, false, rng)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

func BenchmarkResNetForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net := models.BuildCIFARResNet(1, 8, 3, 10, rng)
	x := tensor.Randn(rng, 1, 8, 3, 32, 32)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ce := nn.CrossEntropy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		nn.ZeroGrads(net)
		net.Backward(grad)
	}
}

func BenchmarkKFACStep(b *testing.B) {
	for _, mode := range []kfac.Mode{kfac.EigenMode, kfac.InverseMode} {
		b.Run(mode.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			net := models.BuildCIFARResNet(1, 8, 3, 10, rng)
			prec := kfac.NewFromOptions(net, nil, kfac.Options{
				Mode: mode, FactorUpdateFreq: 1, InvUpdateFreq: 1, Damping: 1e-3,
			})
			x := tensor.Randn(rng, 1, 8, 3, 16, 16)
			labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
			ce := nn.CrossEntropy{}
			out := net.Forward(x, true)
			_, grad := ce.Loss(out, labels)
			nn.ZeroGrads(net)
			net.Backward(grad)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prec.Step(0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKFACStepEngines compares the synchronous and pipelined step
// engines on a full factor + eigendecomposition update of a ResNet-scale
// layer list (a deep CIFAR ResNet with dozens of preconditioned conv and
// linear layers). On multi-core hosts the pipelined engine wins by running
// the per-layer eigendecompositions (and covariance computations) in
// parallel; both engines produce bit-identical preconditioned gradients
// (TestPipelinedEngineMatchesSyncSameSeed).
func BenchmarkKFACStepEngines(b *testing.B) {
	for _, engine := range []kfac.Engine{kfac.EngineSync, kfac.EnginePipelined} {
		b.Run(engine.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			net := models.BuildCIFARResNet(2, 16, 3, 10, rng)
			prec := kfac.NewFromOptions(net, nil, kfac.Options{
				FactorUpdateFreq: 1, InvUpdateFreq: 1, Damping: 1e-3, Engine: engine,
			})
			defer prec.Close()
			x := tensor.Randn(rng, 1, 8, 3, 16, 16)
			labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
			ce := nn.CrossEntropy{}
			out := net.Forward(x, true)
			_, grad := ce.Loss(out, labels)
			nn.ZeroGrads(net)
			net.Backward(grad)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prec.Step(0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPipelinedEngineMatchesSyncSameSeed is the cross-engine equality gate:
// from identical seeds, several full steps under EngineSync and
// EnginePipelined must leave exactly the same preconditioned gradients on
// every layer (tolerance zero — the engines share chunk boundaries,
// collective payloads, and reduction order).
func TestPipelinedEngineMatchesSyncSameSeed(t *testing.T) {
	run := func(engine kfac.Engine) []*tensor.Tensor {
		rng := rand.New(rand.NewSource(6))
		net := models.BuildCIFARResNet(1, 8, 3, 10, rng)
		prec := kfac.NewFromOptions(net, nil, kfac.Options{
			FactorUpdateFreq: 1, InvUpdateFreq: 2, Damping: 1e-3, Engine: engine,
		})
		defer prec.Close()
		ce := nn.CrossEntropy{}
		for step := 0; step < 3; step++ {
			srng := rand.New(rand.NewSource(int64(100 + step)))
			x := tensor.Randn(srng, 1, 8, 3, 16, 16)
			labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
			out := net.Forward(x, true)
			_, grad := ce.Loss(out, labels)
			nn.ZeroGrads(net)
			net.Backward(grad)
			if err := prec.Step(0.1); err != nil {
				t.Fatal(err)
			}
		}
		var grads []*tensor.Tensor
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Clone())
		}
		return grads
	}
	want := run(kfac.EngineSync)
	got := run(kfac.EnginePipelined)
	if len(want) != len(got) {
		t.Fatalf("param count mismatch: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i], 0) {
			t.Errorf("param %d: pipelined gradient differs from sync", i)
		}
	}
}

func BenchmarkKFACStepStale(b *testing.B) {
	// Steady-state step with stale decompositions (the common case): only
	// local preconditioning, no factor or eigendecomposition work.
	rng := rand.New(rand.NewSource(7))
	net := models.BuildCIFARResNet(1, 8, 3, 10, rng)
	prec := kfac.NewFromOptions(net, nil, kfac.Options{
		FactorUpdateFreq: 1 << 30, InvUpdateFreq: 1 << 30, Damping: 1e-3,
	})
	x := tensor.Randn(rng, 1, 8, 3, 16, 16)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ce := nn.CrossEntropy{}
	out := net.Forward(x, true)
	_, grad := ce.Loss(out, labels)
	nn.ZeroGrads(net)
	net.Backward(grad)
	if err := prec.Step(0.1); err != nil { // first step computes everything
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prec.Step(0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedKFACIteration(b *testing.B) {
	// Full distributed iteration over 4 in-process ranks: forward,
	// backward, gradient allreduce, K-FAC step.
	const p = 4
	fab := comm.NewInprocFabric(p)
	nets := make([]*nn.Sequential, p)
	precs := make([]*kfac.Preconditioner, p)
	comms := make([]*comm.Communicator, p)
	for r := 0; r < p; r++ {
		nets[r] = models.BuildCIFARResNet(1, 4, 3, 10, rand.New(rand.NewSource(8)))
		comms[r] = comm.NewCommunicator(fab.Endpoint(r))
		precs[r] = kfac.NewFromOptions(nets[r], comms[r], kfac.Options{
			FactorUpdateFreq: 10, InvUpdateFreq: 100, Damping: 1e-3,
		})
	}
	cfgData := data.SyntheticConfig{Train: 64, Test: 8, Classes: 10, Channels: 3, Size: 16, Seed: 8}
	train, _ := data.GenerateSynthetic(cfgData)
	batches := data.Batches(train, data.ShardSampler{N: train.Len(), World: 1, Seed: 1}.EpochIndices(0), 8)
	ce := nn.CrossEntropy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				bt := batches[i%len(batches)]
				out := nets[r].Forward(bt.X, true)
				_, grad := ce.Loss(out, bt.Labels)
				nn.ZeroGrads(nets[r])
				nets[r].Backward(grad)
				fu := comm.NewFuser(comms[r], 0)
				for _, pr := range nets[r].Params() {
					fu.Add(pr.Grad)
				}
				if err := fu.Flush(); err != nil {
					b.Error(err)
					return
				}
				if err := precs[r].Step(0.1); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}
