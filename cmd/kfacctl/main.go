// Command kfacctl is the client CLI for the kfacd control-plane daemon.
//
//	kfacctl submit -f job.json        submit a job spec (or "-" for stdin)
//	kfacctl list                      list all jobs
//	kfacctl inspect j-0001            one job, full spec + result
//	kfacctl pause j-0001              park a job, checkpoint retained
//	kfacctl resume j-0001             re-queue a paused job
//	kfacctl cancel j-0001             terminate via consensus stop
//	kfacctl metrics j-0001 -follow    stream step metrics
//	kfacctl wait j-0001               block until settled
//	kfacctl checkpoints j-0001        the job's stored checkpoints
//	kfacctl store                     store-wide stats
//
// The daemon address comes from -addr or the KFACD_ADDR environment
// variable (default http://127.0.0.1:7070).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctl"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kfacctl:", err)
	os.Exit(1)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func jobLine(v ctl.JobView) string {
	return fmt.Sprintf("%-8s %-10s %-12s user=%-10s world=%d metrics=%d",
		v.ID, v.Name, v.State, v.User, v.World, v.Metrics)
}

func main() {
	base := os.Getenv("KFACD_ADDR")
	if base == "" {
		base = "http://127.0.0.1:7070"
	}
	flag.StringVar(&base, "addr", base, "kfacd base URL")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(),
			"usage: kfacctl [-addr URL] {submit -f FILE|list|inspect ID|pause ID|resume ID|cancel ID|metrics ID [-since N] [-follow]|wait ID|checkpoints ID|store|health}")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := ctl.NewClient(base, nil)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cmd, rest := args[0], args[1:]
	needID := func() string {
		if len(rest) < 1 {
			fail(fmt.Errorf("%s needs a job id", cmd))
		}
		return rest[0]
	}
	switch cmd {
	case "health":
		if err := c.Health(ctx); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		file := fs.String("f", "", "job spec JSON file (\"-\" for stdin)")
		wait := fs.Bool("wait", false, "block until the job settles")
		fs.Parse(rest) //nolint:errcheck // ExitOnError
		if *file == "" {
			fail(fmt.Errorf("submit needs -f FILE"))
		}
		var raw []byte
		var err error
		if *file == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*file)
		}
		if err != nil {
			fail(err)
		}
		var spec ctl.JobSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			fail(fmt.Errorf("parsing %s: %w", *file, err))
		}
		v, err := c.Submit(ctx, &spec)
		if err != nil {
			fail(err)
		}
		fmt.Println(jobLine(v))
		if *wait {
			v, err = c.WaitSettled(ctx, v.ID)
			if err != nil {
				fail(err)
			}
			printJSON(v)
		}
	case "list":
		vs, err := c.Jobs(ctx)
		if err != nil {
			fail(err)
		}
		for _, v := range vs {
			fmt.Println(jobLine(v))
		}
	case "inspect":
		v, err := c.Job(ctx, needID())
		if err != nil {
			fail(err)
		}
		printJSON(v)
	case "pause":
		v, err := c.Pause(ctx, needID())
		if err != nil {
			fail(err)
		}
		fmt.Println(jobLine(v))
	case "resume":
		v, err := c.Resume(ctx, needID())
		if err != nil {
			fail(err)
		}
		fmt.Println(jobLine(v))
	case "cancel":
		v, err := c.Cancel(ctx, needID())
		if err != nil {
			fail(err)
		}
		fmt.Println(jobLine(v))
	case "wait":
		v, err := c.WaitSettled(ctx, needID())
		if err != nil {
			fail(err)
		}
		printJSON(v)
	case "metrics":
		id := needID()
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		since := fs.Int("since", 0, "return metrics with seq above this")
		follow := fs.Bool("follow", false, "poll until the job settles")
		fs.Parse(rest[1:]) //nolint:errcheck // ExitOnError
		cursor := *since
		for {
			ms, err := c.Metrics(ctx, id, cursor)
			if err != nil {
				fail(err)
			}
			for _, m := range ms {
				fmt.Printf("seq=%d epoch=%d iter=%d lr=%.5f loss=%.5f step=%s\n",
					m.Seq, m.Epoch, m.Iteration, m.LR, m.Loss, time.Duration(m.StepNS))
				cursor = m.Seq
			}
			if !*follow {
				break
			}
			v, err := c.Job(ctx, id)
			if err != nil {
				fail(err)
			}
			if v.State.Terminal() || v.State == ctl.Paused {
				break
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(300 * time.Millisecond):
			}
		}
	case "checkpoints":
		cks, err := c.Checkpoints(ctx, needID())
		if err != nil {
			fail(err)
		}
		for _, ck := range cks {
			fmt.Printf("seq=%d sum=%s time=%s\n", ck.Seq, ck.Sum, ck.Time.Format(time.RFC3339))
		}
	case "store":
		st, err := c.StoreStats(ctx)
		if err != nil {
			fail(err)
		}
		printJSON(st)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
