// Command kfac-train trains a model on the synthetic CIFAR stand-in with
// SGD or distributed K-FAC, printing per-epoch progress — the Go analogue
// of the paper's training scripts (Listing 1).
//
// Examples:
//
//	kfac-train -optimizer kfac -world 4 -epochs 8
//	kfac-train -optimizer sgd -epochs 12 -batch 64
//	kfac-train -optimizer kfac -strategy layerwise -inv-freq 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	var (
		optimizer = flag.String("optimizer", "kfac", "sgd or kfac")
		strategy  = flag.String("strategy", "roundrobin", "kfac distribution: roundrobin, layerwise, greedy")
		mode      = flag.String("mode", "eigen", "kfac inversion: eigen or inverse")
		world     = flag.Int("world", 1, "number of simulated workers (in-process ranks)")
		epochs    = flag.Int("epochs", 8, "training epochs")
		batch     = flag.Int("batch", 32, "mini-batch size per rank")
		lr        = flag.Float64("lr", 0.05, "base learning rate per rank (scaled by world)")
		damping   = flag.Float64("damping", 1e-3, "K-FAC Tikhonov damping γ")
		invFreq   = flag.Int("inv-freq", 10, "kfac-update-freq (eigendecomposition interval)")
		facFreq   = flag.Int("factor-freq", 1, "factor update interval")
		width     = flag.Int("width", 8, "model width (ResNet stem channels)")
		blocks    = flag.Int("blocks", 1, "residual blocks per stage")
		seed      = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	cfgData := data.CIFARLike(*seed)
	train, test := data.GenerateSynthetic(cfgData)
	fmt.Printf("dataset: %d train / %d test, %d classes, %dx%dx%d images\n",
		train.Len(), test.Len(), train.Classes, cfgData.Channels, cfgData.Size, cfgData.Size)

	tc := trainer.Config{
		Epochs:       *epochs,
		BatchPerRank: *batch,
		LR: optim.LRSchedule{
			BaseLR: *lr * float64(*world), WarmupEpochs: 1,
			Milestones: []int{*epochs * 2 / 3, *epochs * 5 / 6}, Factor: 0.1,
		},
		Momentum: 0.9,
		Seed:     *seed,
		Log:      os.Stdout,
	}
	if *optimizer == "kfac" {
		opts := &kfac.Options{
			Damping:          *damping,
			InvUpdateFreq:    *invFreq,
			FactorUpdateFreq: *facFreq,
		}
		switch *strategy {
		case "layerwise":
			opts.Strategy = kfac.LayerWise
		case "greedy":
			opts.Strategy = kfac.SizeGreedy
		default:
			opts.Strategy = kfac.RoundRobin
		}
		if *mode == "inverse" {
			opts.Mode = kfac.InverseMode
		}
		tc.KFAC = opts
	}

	build := func(rng *rand.Rand) *nn.Sequential {
		return models.BuildCIFARResNet(*blocks, *width, 3, 10, rng)
	}
	fmt.Printf("model: cifar-resnet-%d width %d (%d params), optimizer %s, world %d\n",
		6**blocks+2, *width, nn.ParamCount(build(rand.New(rand.NewSource(*seed)))),
		*optimizer, *world)

	var res *trainer.Result
	var err error
	if *world == 1 {
		res, err = trainer.TrainRank(build(rand.New(rand.NewSource(*seed))), nil, train, test, tc)
	} else {
		var all []*trainer.Result
		all, err = trainer.RunDistributed(*world, build, train, test, tc)
		if err == nil {
			res = all[0]
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "training failed:", err)
		os.Exit(1)
	}
	fmt.Printf("done: best val %.2f%%, final val %.2f%%, %d iterations\n",
		res.BestValAcc*100, res.FinalValAcc*100, res.Iterations)
}
