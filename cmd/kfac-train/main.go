// Command kfac-train trains a model on the synthetic CIFAR stand-in with
// SGD or distributed K-FAC, printing per-epoch progress — the Go analogue
// of the paper's training scripts (Listing 1), built on the trainer's
// Session API.
//
// Examples:
//
//	kfac-train -optimizer kfac -world 4 -epochs 8
//	kfac-train -optimizer kfac -engine pipelined -world 4
//	kfac-train -optimizer sgd -epochs 12 -batch 64
//	kfac-train -optimizer kfac -strategy layerwise -inv-freq 20
//	kfac-train -world 4 -chaos -chaos-latency 500us -chaos-drop 0.05
//
// The -chaos flags wrap the in-process fabric in a fault-injecting
// transport (comm.ChaosTransport): seed-replayable per-message latency,
// dropped-and-retried messages, and bandwidth caps, with per-rank delivery
// metrics printed at the end. Latency-only schedules leave results
// bit-identical to a clean run — only the timing moves.
//
// Interrupting the run (SIGINT/SIGTERM) cancels it cleanly: every rank
// stops at the same iteration boundary and the partial results are
// reported.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

// usage prints the flag reference grouped by family; the default
// alphabetical PrintDefaults interleaves chaos, engine, and training knobs
// unhelpfully.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `kfac-train — train the synthetic CIFAR stand-in with SGD or distributed K-FAC

Training:
  -optimizer {sgd,kfac}   optimizer (default kfac)
  -world N                in-process ranks (default 1)
  -epochs N               training epochs (default 8)
  -batch N                mini-batch size per rank (default 32)
  -lr F                   base learning rate per rank, scaled by world (default 0.05)
  -width N / -blocks N    model size (ResNet stem channels / blocks per stage)
  -seed N                 random seed (default 42)

K-FAC (with -optimizer kfac):
  -engine {sync,pipelined}             step engine; pipelined overlaps compute and comm
  -strategy {roundrobin,layerwise,greedy}  factor placement across workers
  -mode {eigen,inverse}                inversion path (Table I ablation)
  -precision {f64,f32}                 compute precision of the K-FAC kernels; f32 runs
                                       float32 storage with float64 accumulation, keeping
                                       state and communication float64 (default f64)
  -damping F                           Tikhonov damping γ (default 1e-3)
  -inv-freq N                          eigendecomposition interval (default 10)
  -factor-freq N                       factor update interval (default 1)

Distribution plan (with -optimizer kfac; see docs/ARCHITECTURE.md):
  -dist-mode {auto,commopt,memopt,hybrid}  memory/communication tradeoff:
                                       commopt replicates eigenbases everywhere,
                                       memopt keeps them on owners and broadcasts
                                       preconditioned gradients each iteration,
                                       hybrid interpolates (needs -grad-worker-frac)
  -grad-worker-frac F                  hybrid gradient-worker fraction, 0 < F < 1
  -group-size N                        hierarchical allreduce: N consecutive ranks
                                       per group for gradient/factor exchange (N ≥ 2)

Compression & autotuning (with -optimizer kfac and -world > 1):
  -compress {none,float16,topk}        lossy codec for gradient and factor payloads,
                                       wrapped in error-feedback residual compensation
  -topk-frac F                         kept-coordinate fraction of -compress topk
                                       (0 < F ≤ 1, default 0.1)
  -no-error-feedback                   send the bare biased stream (A/B experiments)
  -autotune                            bandwidth-adaptive control: re-select codec,
                                       fusion bytes, and group size each factor update
                                       from a consensus link estimate
  -autotune-interval N                 factor updates between decisions (default 1)

Chaos injection (needs -world > 1):
  -chaos                  enable fault injection on the in-process fabric
  -chaos-seed N           schedule seed (same seed replays the same faults)
  -chaos-latency D        max injected per-message latency (default 200µs)
  -chaos-drop F           per-attempt drop probability (retried, bounded)
  -chaos-bandwidth F      per-message bandwidth cap in bytes/sec (0 = uncapped)

Examples:
  kfac-train -optimizer kfac -world 4 -epochs 8
  kfac-train -optimizer kfac -engine pipelined -world 4
  kfac-train -optimizer sgd -epochs 12 -batch 64
  kfac-train -optimizer kfac -strategy layerwise -inv-freq 20
  kfac-train -optimizer kfac -world 4 -dist-mode memopt
  kfac-train -optimizer kfac -world 8 -dist-mode hybrid -grad-worker-frac 0.25
  kfac-train -optimizer kfac -world 8 -group-size 4
  kfac-train -optimizer kfac -world 4 -compress topk -topk-frac 0.05
  kfac-train -optimizer kfac -world 4 -autotune -chaos -chaos-bandwidth 2e6
  kfac-train -world 4 -chaos -chaos-latency 500us -chaos-drop 0.05

Tuning guidance (engine choice, staleness, fusion, distribution modes):
docs/PERFORMANCE.md.
`)
}

func main() {
	var (
		optimizer = flag.String("optimizer", "kfac", "sgd or kfac")
		strategy  = flag.String("strategy", "roundrobin", "kfac distribution: roundrobin, layerwise, greedy")
		mode      = flag.String("mode", "eigen", "kfac inversion: eigen or inverse")
		precision = flag.String("precision", "f64", "kfac compute precision: f64 or f32 (float32 kernels, float64 accumulation)")
		engine    = flag.String("engine", "sync", "kfac step engine: sync or pipelined")
		world     = flag.Int("world", 1, "number of simulated workers (in-process ranks)")
		epochs    = flag.Int("epochs", 8, "training epochs")
		batch     = flag.Int("batch", 32, "mini-batch size per rank")
		lr        = flag.Float64("lr", 0.05, "base learning rate per rank (scaled by world)")
		damping   = flag.Float64("damping", 1e-3, "K-FAC Tikhonov damping γ")
		invFreq   = flag.Int("inv-freq", 10, "kfac-update-freq (eigendecomposition interval)")
		facFreq   = flag.Int("factor-freq", 1, "factor update interval")
		distMode  = flag.String("dist-mode", "auto", "distribution plan: auto, commopt, memopt, or hybrid")
		gradFrac  = flag.Float64("grad-worker-frac", 0, "hybrid gradient-worker fraction (0 < F < 1; requires -dist-mode hybrid)")
		groupSize = flag.Int("group-size", 0, "hierarchical allreduce group size (0 = flat ring, else ≥ 2)")
		width     = flag.Int("width", 8, "model width (ResNet stem channels)")
		blocks    = flag.Int("blocks", 1, "residual blocks per stage")
		seed      = flag.Int64("seed", 42, "random seed")

		compress   = flag.String("compress", "none", "payload codec: none, float16, or topk (error-feedback compensated)")
		topkFrac   = flag.Float64("topk-frac", 0.1, "kept-coordinate fraction for -compress topk (0 < F ≤ 1)")
		noEF       = flag.Bool("no-error-feedback", false, "disable error-feedback compensation (biased stream, A/B only)")
		autotune   = flag.Bool("autotune", false, "bandwidth-adaptive codec/fusion/group-size control")
		tuneEveryN = flag.Int("autotune-interval", 1, "factor updates between autotune consensus decisions")

		chaosOn   = flag.Bool("chaos", false, "inject transport faults (requires -world > 1)")
		chaosSeed = flag.Int64("chaos-seed", 1, "chaos schedule seed (same seed replays the same faults)")
		chaosLat  = flag.Duration("chaos-latency", 200*time.Microsecond, "max injected per-message latency")
		chaosDrop = flag.Float64("chaos-drop", 0, "per-attempt message drop probability (retried, bounded)")
		chaosBW   = flag.Float64("chaos-bandwidth", 0, "per-message bandwidth cap in bytes/sec (0 = uncapped)")
	)
	flag.Usage = usage
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfgData := data.CIFARLike(*seed)
	train, test := data.GenerateSynthetic(cfgData)
	fmt.Printf("dataset: %d train / %d test, %d classes, %dx%dx%d images\n",
		train.Len(), test.Len(), train.Classes, cfgData.Channels, cfgData.Size, cfgData.Size)

	opts := []trainer.SessionOption{
		trainer.WithEpochs(*epochs),
		trainer.WithBatchPerRank(*batch),
		trainer.WithLRSchedule(optim.LRSchedule{
			BaseLR: *lr * float64(*world), WarmupEpochs: 1,
			Milestones: []int{*epochs * 2 / 3, *epochs * 5 / 6}, Factor: 0.1,
		}),
		trainer.WithMomentum(0.9),
		trainer.WithSeed(*seed),
		trainer.WithLogger(os.Stdout),
	}
	if *optimizer != "kfac" {
		// The distribution-plan and grouped-allreduce knobs configure the
		// K-FAC preconditioner; silently ignoring them under SGD would hide
		// typos, so reject the combination outright.
		if *distMode != "auto" || *gradFrac != 0 || *groupSize != 0 {
			fmt.Fprintln(os.Stderr, "-dist-mode/-grad-worker-frac/-group-size require -optimizer kfac")
			os.Exit(2)
		}
		if *compress != "none" || *noEF || *autotune {
			fmt.Fprintln(os.Stderr, "-compress/-no-error-feedback/-autotune require -optimizer kfac")
			os.Exit(2)
		}
	}
	if *optimizer == "kfac" {
		kopts := []kfac.Option{
			kfac.WithDamping(*damping),
			kfac.WithInvUpdateFreq(*invFreq),
			kfac.WithFactorUpdateFreq(*facFreq),
		}
		switch *distMode {
		case "auto":
			if *gradFrac != 0 {
				fmt.Fprintln(os.Stderr, "-grad-worker-frac requires -dist-mode hybrid")
				os.Exit(2)
			}
		case "commopt", "memopt":
			if *gradFrac != 0 {
				fmt.Fprintf(os.Stderr, "-grad-worker-frac conflicts with -dist-mode %s (the fraction is fixed there; use hybrid)\n", *distMode)
				os.Exit(2)
			}
			m := kfac.CommOpt
			if *distMode == "memopt" {
				m = kfac.MemOpt
			}
			kopts = append(kopts, kfac.WithDistMode(m))
		case "hybrid":
			if *gradFrac <= 0 || *gradFrac >= 1 {
				fmt.Fprintf(os.Stderr, "-dist-mode hybrid needs -grad-worker-frac strictly between 0 and 1 (got %v); use commopt/memopt for the endpoints\n", *gradFrac)
				os.Exit(2)
			}
			kopts = append(kopts, kfac.WithGradWorkerFrac(*gradFrac))
		default:
			fmt.Fprintf(os.Stderr, "unknown -dist-mode %q (want auto, commopt, memopt, or hybrid)\n", *distMode)
			os.Exit(2)
		}
		if *groupSize != 0 {
			if *groupSize < 2 {
				fmt.Fprintf(os.Stderr, "-group-size must be 0 (flat) or ≥ 2, got %d\n", *groupSize)
				os.Exit(2)
			}
			if *groupSize >= *world {
				fmt.Fprintf(os.Stderr, "-group-size %d is not smaller than -world %d: the hierarchy would be a single group (use 0 for the flat ring)\n", *groupSize, *world)
				os.Exit(2)
			}
			kopts = append(kopts, kfac.WithGroupSize(*groupSize))
		}
		switch *strategy {
		case "layerwise":
			kopts = append(kopts, kfac.WithStrategy(kfac.LayerWise))
		case "greedy":
			kopts = append(kopts, kfac.WithStrategy(kfac.SizeGreedy))
		default:
			kopts = append(kopts, kfac.WithStrategy(kfac.RoundRobin))
		}
		if *mode == "inverse" {
			kopts = append(kopts, kfac.WithMode(kfac.InverseMode))
		}
		pr, err := kfac.ParsePrecision(*precision)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kopts = append(kopts, kfac.WithPrecision(pr))
		var codec comm.Codec
		switch *compress {
		case "none":
		case "float16":
			codec = comm.Float16Codec{}
		case "topk":
			if *topkFrac <= 0 || *topkFrac > 1 {
				fmt.Fprintf(os.Stderr, "-topk-frac must be in (0, 1], got %v\n", *topkFrac)
				os.Exit(2)
			}
			codec = comm.TopKCodec{FractionK: *topkFrac}
		default:
			fmt.Fprintf(os.Stderr, "unknown -compress %q (want none, float16, or topk)\n", *compress)
			os.Exit(2)
		}
		if codec != nil {
			if *noEF {
				kopts = append(kopts, kfac.WithBareCompression(codec))
			} else {
				kopts = append(kopts, kfac.WithCompression(codec))
			}
		} else if *noEF {
			if !*autotune {
				fmt.Fprintln(os.Stderr, "-no-error-feedback requires -compress or -autotune")
				os.Exit(2)
			}
			// Autotuned codecs honor the bare-stream knob too.
			kopts = append(kopts, func(o *kfac.Options) { o.NoErrorFeedback = true })
		}
		if *autotune {
			kopts = append(kopts, kfac.WithAutotune(kfac.AutotuneConfig{Interval: *tuneEveryN}))
		} else if *tuneEveryN != 1 {
			fmt.Fprintln(os.Stderr, "-autotune-interval requires -autotune")
			os.Exit(2)
		}
		switch *engine {
		case "pipelined":
			kopts = append(kopts, kfac.WithEngine(kfac.EnginePipelined))
		case "sync":
			// default engine
		default:
			fmt.Fprintf(os.Stderr, "unknown -engine %q (want sync or pipelined)\n", *engine)
			os.Exit(2)
		}
		opts = append(opts, trainer.WithKFAC(kopts...))
	}

	build := func(rng *rand.Rand) *nn.Sequential {
		return models.BuildCIFARResNet(*blocks, *width, 3, 10, rng)
	}
	fmt.Printf("model: cifar-resnet-%d width %d (%d params), optimizer %s (%s engine), world %d\n",
		6**blocks+2, *width, nn.ParamCount(build(rand.New(rand.NewSource(*seed)))),
		*optimizer, *engine, *world)

	var chaosFab *comm.ChaosFabric
	var res *trainer.Result
	var err error
	if *world == 1 {
		if *chaosOn {
			fmt.Fprintln(os.Stderr, "-chaos needs -world > 1 (a single rank has no transport to disturb)")
			os.Exit(2)
		}
		var s *trainer.Session
		s, err = trainer.NewSession(build(rand.New(rand.NewSource(*seed))), nil, train, test, opts...)
		if err == nil {
			res, err = s.Run(ctx)
		}
	} else {
		var fab comm.Fabric = comm.NewInprocFabric(*world)
		if *chaosOn {
			chaosFab = comm.NewChaosFabric(fab, *world, comm.ChaosConfig{
				Seed:         *chaosSeed,
				MaxLatency:   *chaosLat,
				DropRate:     *chaosDrop,
				BandwidthBps: *chaosBW,
			})
			fab = chaosFab
			fmt.Printf("chaos: seed %d, latency ≤ %v, drop %.1f%%, bandwidth %s\n",
				*chaosSeed, *chaosLat, *chaosDrop*100, bwString(*chaosBW))
		}
		var all []*trainer.Result
		all, err = trainer.RunSessionsOn(ctx, fab, *world, build, train, test, opts...)
		if len(all) > 0 {
			res = all[0] // rank 0's result; partial under cancellation
		}
	}
	if errors.Is(err, context.Canceled) {
		fmt.Println("interrupted: run cancelled cleanly at an iteration boundary")
		if res == nil {
			if chaosFab != nil {
				printChaosMetrics(chaosFab, *world)
			}
			os.Exit(130)
		}
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "training failed:", err)
		// The delivery counters are most useful exactly when chaos broke
		// the run (e.g. a drop-exhausted send): print them before exiting.
		if chaosFab != nil {
			printChaosMetrics(chaosFab, *world)
		}
		os.Exit(1)
	}
	fmt.Printf("done: best val %.2f%%, final val %.2f%%, %d iterations\n",
		res.BestValAcc*100, res.FinalValAcc*100, res.Iterations)
	printKFACProfile(res)
	if chaosFab != nil {
		printChaosMetrics(chaosFab, *world)
	}
}

// bwString formats a bandwidth cap for the chaos banner.
func bwString(bps float64) string {
	if bps <= 0 {
		return "uncapped"
	}
	return fmt.Sprintf("%.0f B/s", bps)
}

// printChaosMetrics reports the per-rank delivery counters the chaos
// transport collected.
func printChaosMetrics(fab *comm.ChaosFabric, world int) {
	fmt.Println("chaos delivery metrics:")
	for r := 0; r < world; r++ {
		m := fab.Metrics(r)
		fmt.Printf("  rank %d: sent %d (%.1f MB), recv %d, dropped %d, retried %d, injected delay %v\n",
			r, m.Sent, float64(m.Bytes)/1e6, m.Received, m.Dropped, m.Retried,
			m.InjectedDelay.Round(time.Millisecond))
	}
}

// printKFACProfile reports the preconditioner's measured stage profile and,
// for the pipelined engine, its comm/compute overlap — the run's Table V
// analogue.
func printKFACProfile(res *trainer.Result) {
	if res == nil || res.KFACStats == nil {
		return
	}
	snap := res.KFACStats.Snapshot()
	const r = 10 * time.Microsecond
	fmt.Printf("kfac stages: factor comp %v / comm %v, eig comp %v / comm %v, precondition %v\n",
		snap.FactorCompute.Round(r), snap.FactorComm.Round(r),
		snap.EigCompute.Round(r), snap.EigComm.Round(r), snap.Precondition.Round(r))
	if snap.PipelineUpdates > 0 {
		fmt.Printf("pipelined engine: update wall %v, overlapped %v, issuer idle %v over %d updates\n",
			snap.PipelineWall.Round(r), res.KFACStats.Overlap().Round(r),
			snap.PipelineIdle.Round(r), snap.PipelineUpdates)
	}
	for _, d := range snap.TuneDecisions {
		if !d.Changed {
			continue
		}
		codec := d.Codec
		if codec == "" {
			codec = "exact"
		}
		fmt.Printf("autotune: step %d → %s (codec %s, fusion %d B, groups %d) at %.1f MB/s, drop %.1f%%\n",
			d.Step, d.Name, codec, d.FusionBytes, d.GroupSize,
			d.BandwidthBps/1e6, d.DropRate*100)
	}
}
