// Command kfacd is the multi-job training control-plane daemon: it accepts
// job specs over an HTTP JSON API, admits them against a declared worker
// fleet (rejecting jobs whose planned K-FAC memory footprint can never
// fit), schedules them fair-share across users, executes each through the
// elastic trainer (worker deaths recover automatically), streams per-step
// metrics, and files every checkpoint into a content-addressed store with
// configurable retention.
//
// Examples:
//
//	kfacd -addr :7070 -store /var/lib/kfacd/store -workers 8
//	kfacd -workers 4 -mem-per-worker 64MiB -keep-per-job 3
//
// SIGINT/SIGTERM drains gracefully: no new submissions, running jobs are
// paused at a step boundary with their latest checkpoint retained, then
// the process exits. A restarted daemon resumes paused jobs from the store
// when asked to via the API.
//
// See docs/ARCHITECTURE.md, "Control plane", for the state machine and
// API contract; kfacctl is the companion client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ckptstore"
	"repro/internal/ctl"
)

// parseBytes accepts "67108864", "64MiB", "1GiB", "512KiB".
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			s = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "HTTP listen address")
	storeDir := flag.String("store", "kfacd-store", "checkpoint store directory")
	scratch := flag.String("scratch", "", "elastic recovery scratch directory (default: temp)")
	workers := flag.Int("workers", 4, "worker fleet size")
	memPerWorker := flag.String("mem-per-worker", "0",
		"per-worker memory budget for K-FAC decompositions (0 disables the check; accepts KiB/MiB/GiB)")
	keepPerJob := flag.Int("keep-per-job", 0, "retention: newest checkpoints kept per job (0 = all)")
	maxAge := flag.Duration("max-age", 0, "retention: drop checkpoints older than this (0 = no limit)")
	metricsBuf := flag.Int("metrics-buffer", 4096, "retained step metrics per job")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
	quiet := flag.Bool("quiet", false, "suppress scheduler logging")
	flag.Parse()

	mem, err := parseBytes(*memPerWorker)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kfacd:", err)
		os.Exit(2)
	}
	cfg := ctl.Config{
		Fleet:         ctl.Fleet{Workers: *workers, MemoryPerWorker: mem},
		StoreDir:      *storeDir,
		ScratchDir:    *scratch,
		Retention:     ckptstore.Policy{MaxPerJob: *keepPerJob, MaxAge: *maxAge},
		MetricsBuffer: *metricsBuf,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	d, err := ctl.NewDaemon(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kfacd:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: ctl.NewHandler(d)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "kfacd: listening on %s — fleet %d worker(s), store %s\n",
		*addr, *workers, *storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "kfacd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "kfacd: %v — draining (deadline %v)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := d.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "kfacd:", err)
		}
		cancel()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(shutCtx) //nolint:errcheck // exiting either way
		shutCancel()
		d.Close()
		fmt.Fprintln(os.Stderr, "kfacd: drained, bye")
	}
}
