// Command kfac-bench regenerates the paper's tables and figures, and — in
// -json mode — emits the machine-readable benchmark trajectory
// (BENCH_<scenario>.json) every performance-affecting change is measured
// against.
//
// Usage:
//
//	kfac-bench -list              # show all experiment IDs
//	kfac-bench -exp table1        # run one experiment
//	kfac-bench -exp pipeline      # pipelined vs synchronous step-engine profile
//	kfac-bench -exp chaos         # step-time degradation vs injected latency
//	kfac-bench -all               # run everything
//	kfac-bench -all -quick        # smoke-test scale (seconds instead of minutes)
//	kfac-bench -json -out bench/  # write BENCH_*.json (engines × model sizes,
//	                              # plus the dist_* distribution-mode axis)
//	kfac-bench -json -short       # tiny-model JSON smoke run (the CI artifact job)
//
// Each experiment prints its table/series to stdout together with the
// paper's reported values for comparison; see EXPERIMENTS.md for the
// recorded paper-vs-measured summary and docs/PERFORMANCE.md for the JSON
// schema and tuning guidance. Interrupting the process (SIGINT/SIGTERM)
// cancels the in-progress runs cleanly through the trainer's context
// plumbing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
)

// usage prints the grouped flag reference; the default flag.PrintDefaults
// interleaves unrelated flag families alphabetically.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `kfac-bench — paper artifacts and benchmark trajectories

Experiment selection:
  -list         list experiment IDs
  -exp ID       run one experiment (see -list)
  -all          run every experiment
  -quick        reduced-scale smoke runs (with -exp/-all)

Benchmark JSON mode:
  -json         run the benchmark matrix and write BENCH_<scenario>.json:
                the (model × engine) step-engine cells plus the dist_* axis
                ({COMM-OPT, MEM-OPT, HYBRID} × grad-worker fraction, with
                per-rank peak factor memory)
  -out DIR      output directory for BENCH_*.json (default ".")
  -short        tiny-model matrix for CI smoke jobs (with -json)
  -precision P  precision slice of the matrix: f64 (reference cells and the
                dist_* axis), f32 (the _f32 mixed-precision cells only), or
                both (default)
  -world N      dist_* axis world size (0 = 4 in-process, 16 for -fabric tcp)
  -fabric F     dist transport: inproc (goroutines, the default) or tcp
                (one OS process per rank over the TCP transport; runs the
                f64 {commopt, memopt, hybrid50} sweep)
  -cells        print the BENCH_<scenario> cell names the configured axes
                emit, one per line, and exit (CI derives its artifact
                asserts from this instead of a baked-in file list)
  -eig          run the eigensolver microbenchmark instead of the step
                matrix and write BENCH_eig.json (serial vs blocked vs
                GOMAXPROCS-teamed at dims 256/1024/4096; -short shrinks
                the ladder); carries its own schema, kfac-bench/eig/v1

Common:
  -seed N       random seed (default 42)

Examples:
  kfac-bench -exp table1
  kfac-bench -all -quick
  kfac-bench -json -out bench-artifacts
  kfac-bench -json -short
  kfac-bench -json -precision f32 -out bench-artifacts
  kfac-bench -json -fabric tcp -world 16 -out bench-artifacts
  kfac-bench -json -short -cells
  kfac-bench -json -eig -out bench-artifacts
`)
}

func main() {
	var (
		expID    = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs")
		quick    = flag.Bool("quick", false, "reduced-scale smoke runs")
		jsonMode = flag.Bool("json", false, "emit BENCH_<scenario>.json benchmark trajectories")
		outDir   = flag.String("out", ".", "output directory for -json results")
		short    = flag.Bool("short", false, "tiny-model -json matrix (CI smoke)")
		prec     = flag.String("precision", "both", "-json precision slice: f64, f32, or both")
		world    = flag.Int("world", 0, "dist_* axis world size (0 = fabric default)")
		fabric   = flag.String("fabric", "inproc", "dist transport: inproc or tcp")
		cells    = flag.Bool("cells", false, "print the cell names the configured axes emit and exit")
		eig      = flag.Bool("eig", false, "eigensolver microbenchmark: write BENCH_eig.json (with -json)")
		tcpRank  = flag.Int("tcp-rank", -1, "internal: TCP child rank (spawned by -fabric tcp)")
		addrs    = flag.String("addrs", "", "internal: comma-separated TCP rank addresses")
		seed     = flag.Int64("seed", 42, "random seed")
	)
	flag.Usage = usage
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
	case *cells:
		var names []string
		switch *fabric {
		case "tcp":
			names = experiments.TCPBenchCells(*short, *world)
		default:
			names = experiments.BenchCells(experiments.BenchConfig{
				Short: *short, Precision: *prec, World: *world,
			})
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case *jsonMode && *eig:
		path, err := experiments.RunEigBench(ctx, *outDir, *short, *seed)
		if err != nil {
			fail("bench-eig", err)
		}
		fmt.Println(path)
	case *jsonMode && *tcpRank >= 0:
		// Child of a -fabric tcp parent: one rank of the multi-process world.
		err := experiments.RunBenchTCPChild(ctx, *outDir, *short, *seed, *world, *tcpRank,
			strings.Split(*addrs, ","))
		if err != nil {
			fail(fmt.Sprintf("bench-tcp-rank%d", *tcpRank), err)
		}
	case *jsonMode && *fabric == "tcp":
		exe, err := os.Executable()
		if err != nil {
			fail("bench-tcp", err)
		}
		paths, err := experiments.RunBenchTCP(ctx, *outDir, *short, *seed, *world, exe)
		for _, p := range paths {
			fmt.Println(p)
		}
		if err != nil {
			fail("bench-tcp", err)
		}
	case *jsonMode:
		paths, err := experiments.RunBenchJSONConfig(ctx, *outDir, experiments.BenchConfig{
			Short: *short, Seed: *seed, Precision: *prec, World: *world,
		})
		for _, p := range paths {
			fmt.Println(p)
		}
		if err != nil {
			fail("bench-json", err)
		}
	case *all:
		for _, e := range experiments.All() {
			start := time.Now()
			if err := e.Run(ctx, os.Stdout, cfg); err != nil {
				fail(e.ID, err)
			}
			fmt.Printf("   [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	case *expID != "":
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
			os.Exit(2)
		}
		if err := e.Run(ctx, os.Stdout, cfg); err != nil {
			fail(e.ID, err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// fail reports an experiment error, distinguishing operator interruption
// from real failures.
func fail(id string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", id)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
	os.Exit(1)
}
