// Command kfac-sim queries the calibrated cluster performance model
// directly: time-to-solution, per-stage costs, worker eigendecomposition
// loads and scaling efficiency for any (model, GPUs, strategy, update
// frequency) combination — the interactive counterpart of the fixed
// experiment runners in kfac-bench.
//
// Examples:
//
//	kfac-sim -model resnet50 -gpus 64
//	kfac-sim -model resnet152 -gpus 256 -freq 125 -strategy layerwise
//	kfac-sim -model resnet101 -gpus 64 -workers
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/simulate"
)

// usage prints the flag reference grouped by family, with worked examples.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `kfac-sim — query the calibrated cluster performance model

Scenario:
  -model NAME       resnet32|resnet34|resnet50|resnet101|resnet152 (default resnet50)
  -gpus N           worker count (default 64)
  -strategy NAME    roundrobin|layerwise|greedy factor placement

Distribution plan (memory/communication tradeoff; see docs/ARCHITECTURE.md):
  -dist-mode NAME   auto|commopt|memopt|hybrid — where eigenbases live and who
                    preconditions; auto derives from -strategy
  -grad-worker-frac F  hybrid gradient-worker fraction, 0 < F < 1

K-FAC schedule:
  -freq N           kfac-update-freq; 0 selects the paper's scale-proportional value
  -sgd-epochs N     SGD epoch budget for the time-to-solution comparison (default 90)
  -kfac-epochs N    K-FAC epoch budget (default 55)

Topology and scale planning (docs/ARCHITECTURE.md "Scale planning"):
  -ranks-per-node N override the modeled node size (default 4)
  -nodes-per-rack N override the modeled rack size (default 16)
  -mem-budget MB    per-worker decomposition memory budget for the planner
                    (0 = unlimited); with -dist-mode auto the cost-model
                    planner picks the cheapest fitting configuration
  -plan-sweep       print the planner's full candidate grid — predicted step
                    time, per-rank memory min/median/max, over-budget and
                    chosen markers — at the requested world size

Output:
  -workers          also print per-worker eigendecomposition load (min/median/max)
  -precision W      modeled element width for payloads and memory: f32 (the
                    paper's wire format, default) or f64 (this repo's exact
                    float64 wire format)

Examples:
  kfac-sim -model resnet50 -gpus 64
  kfac-sim -model resnet152 -gpus 256 -freq 125 -strategy layerwise
  kfac-sim -model resnet101 -gpus 64 -workers
  kfac-sim -model resnet50 -gpus 64 -dist-mode memopt
  kfac-sim -model resnet50 -gpus 128 -dist-mode hybrid -grad-worker-frac 0.25
  kfac-sim -model resnet50 -gpus 256 -plan-sweep
  kfac-sim -model resnet152 -gpus 1024 -mem-budget 400 -plan-sweep
`)
}

func main() {
	var (
		model      = flag.String("model", "resnet50", "resnet32|resnet34|resnet50|resnet101|resnet152")
		gpus       = flag.Int("gpus", 64, "worker count")
		freq       = flag.Int("freq", 0, "kfac-update-freq (0 = paper's scale-proportional value)")
		strategy   = flag.String("strategy", "roundrobin", "roundrobin|layerwise|greedy")
		distMode   = flag.String("dist-mode", "auto", "auto|commopt|memopt|hybrid distribution plan")
		gradFrac   = flag.Float64("grad-worker-frac", 0, "hybrid gradient-worker fraction (0 < F < 1)")
		sgdEpochs  = flag.Int("sgd-epochs", 90, "SGD epoch budget")
		kfacEpochs = flag.Int("kfac-epochs", 55, "K-FAC epoch budget")
		workers    = flag.Bool("workers", false, "print per-worker eigendecomposition times")
		precision  = flag.String("precision", "f32", "modeled element width: f32 (the paper's wire format) or f64")
		ranksNode  = flag.Int("ranks-per-node", 0, "modeled ranks per node (0 = topology default)")
		nodesRack  = flag.Int("nodes-per-rack", 0, "modeled nodes per rack (0 = topology default)")
		memBudget  = flag.Float64("mem-budget", 0, "per-worker decomposition memory budget in MB (0 = unlimited)")
		planSweep  = flag.Bool("plan-sweep", false, "print the planner's candidate grid with predictions")
	)
	flag.Usage = usage
	flag.Parse()

	cat, err := models.CatalogByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var strat kfac.Strategy
	switch *strategy {
	case "layerwise":
		strat = kfac.LayerWise
	case "greedy":
		strat = kfac.SizeGreedy
	case "roundrobin":
		strat = kfac.RoundRobin
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	var dmode kfac.DistMode
	switch *distMode {
	case "auto":
		dmode = kfac.DistAuto
	case "commopt":
		dmode = kfac.CommOpt
	case "memopt":
		dmode = kfac.MemOpt
	case "hybrid":
		dmode = kfac.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown -dist-mode %q (want auto, commopt, memopt, or hybrid)\n", *distMode)
		os.Exit(2)
	}
	if dmode == kfac.Hybrid && (*gradFrac <= 0 || *gradFrac >= 1) {
		fmt.Fprintf(os.Stderr, "-dist-mode hybrid needs -grad-worker-frac strictly between 0 and 1 (got %v)\n", *gradFrac)
		os.Exit(2)
	}
	if dmode != kfac.Hybrid && *gradFrac != 0 {
		fmt.Fprintf(os.Stderr, "-grad-worker-frac requires -dist-mode hybrid\n")
		os.Exit(2)
	}

	pr, err := kfac.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cluster := simulate.DefaultV100Cluster()
	bytesPerElem := 4.0
	if pr == kfac.F64 {
		// Model double-width payloads: twice the bytes through the same
		// interconnect model.
		bytesPerElem = 8.0
	}
	cluster.BytesPerElem = bytesPerElem

	m := simulate.NewModel(cluster, simulate.ImageNetWorkload(cat))
	f := *freq
	if f == 0 {
		f = simulate.PaperInvFreq(*gpus)
	}

	// Topology-aware plan model: the planner's pricing surface. The
	// amortization frequencies follow the simulated schedule, and the
	// candidate-independent base cost is the modeled forward+backward so
	// predicted step times are absolute, not just comparable.
	topo := simulate.DefaultTopology()
	if *ranksNode > 0 {
		topo.RanksPerNode = *ranksNode
	}
	if *nodesRack > 0 {
		topo.NodesPerRack = *nodesRack
	}
	if err := topo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pm := simulate.NewPlanModel(topo, cluster)
	pm.InvUpdateFreq = f
	pm.BaseStepSec = m.FwdBwdTime()
	budgetBytes := int64(*memBudget * 1e6)
	plannerCfg := kfac.AutoPlannerConfig{Model: pm, MemoryBudgetBytes: budgetBytes}
	dec := kfac.ResolveAutoPlan(plannerCfg, strat, cat.FactorRefs(), *gpus)

	fmt.Printf("model %s: %.1fM params, %d K-FAC layers, %d iterations/epoch at %d GPUs\n",
		cat.Name, float64(cat.TotalParams())/1e6, len(cat.Layers), m.IterationsPerEpoch(*gpus), *gpus)

	if dmode == kfac.DistAuto {
		// Cost-model-driven DistAuto: the same resolution WithAutoPlanner
		// installs in training, over the catalog's exact factor geometry.
		dmode, *gradFrac = dec.Mode, dec.GradWorkerFrac
		fmt.Printf("auto planner (%d ranks/node × %d nodes/rack): chose %s", topo.RanksPerNode, topo.NodesPerRack, dec.Mode)
		if dec.Mode == kfac.Hybrid {
			fmt.Printf(" f=%g", dec.GradWorkerFrac)
		}
		fmt.Printf(" group=%d — predicted %.1f ms/iter, %.1f MB/rank worst (grid %d, rejected %d",
			dec.GroupSize, dec.PredictedStepSec*1e3, float64(dec.PredictedMemBytes)/1e6,
			dec.Candidates, dec.Rejected)
		if dec.OverBudget {
			fmt.Printf("; NO candidate fit %.0f MB — minimum-memory fallback", *memBudget)
		}
		fmt.Println(")")
	}

	// Resolve the real distribution plan over the catalog's exact factor
	// dimensions and report the per-rank eigenbasis footprint — the memory
	// side of the MEM-OPT/COMM-OPT tradeoff (FP32 on the modeled cluster).
	plan := kfac.BuildPlan(strat, dmode, *gradFrac, cat.FactorRefs(), *gpus)
	elems := plan.DecompElemsPerRank(cat.FactorRefs())
	sortedElems := append([]int64(nil), elems...)
	sort.Slice(sortedElems, func(a, b int) bool { return sortedElems[a] < sortedElems[b] })
	elemMB := bytesPerElem / 1e6 // bytes per element → MB at the modeled width
	fmt.Printf("plan %s (%s elements)\n", plan, pr)
	fmt.Printf("eigenbasis memory/rank: min %.1f MB, median %.1f MB, max %.1f MB (COMM-OPT would hold %.1f MB everywhere)\n",
		float64(sortedElems[0])*elemMB, float64(sortedElems[len(sortedElems)/2])*elemMB,
		float64(sortedElems[len(sortedElems)-1])*elemMB,
		float64(maxElems(kfac.BuildPlan(strat, kfac.CommOpt, 0, cat.FactorRefs(), *gpus).DecompElemsPerRank(cat.FactorRefs())))*elemMB)
	fmt.Printf("per-iteration: fwd+bwd %.1f ms, SGD iter %.1f ms, %s iter %.1f ms (freq %d)\n",
		m.FwdBwdTime()*1e3, m.SGDIterTime(*gpus)*1e3,
		strat, m.KFACIterAvgTime(*gpus, f, strat)*1e3, f)

	fc, fm := m.FactorStage(*gpus)
	ec, em := m.EigStage(*gpus, strat)
	fmt.Printf("stages: factor %.1f ms comp + %.1f ms comm | eig %.1f ms comp + %.1f ms comm\n",
		fc*1e3, fm*1e3, ec*1e3, em*1e3)

	if *planSweep {
		fmt.Printf("\nplan sweep at %d GPUs, %d ranks/node × %d nodes/rack", *gpus, topo.RanksPerNode, topo.NodesPerRack)
		if budgetBytes > 0 {
			fmt.Printf(", budget %.0f MB/worker", *memBudget)
		}
		fmt.Println(":")
		fmt.Printf("  %-8s %-6s %-5s  %9s  %26s  %s\n",
			"mode", "frac", "group", "step ms", "mem/rank MB min/med/max", "status")
		for _, cand := range kfac.PlanCandidates(plannerCfg) {
			ev := pm.Evaluate(strat, cat.FactorRefs(), *gpus, cand)
			mn, md, mx := ev.MemStats()
			status := ""
			if budgetBytes > 0 && ev.MaxMemBytes > budgetBytes {
				status = "over-budget"
			}
			if cand == dec.PlanCandidate {
				status += " <- chosen"
			}
			fmt.Printf("  %-8s %-6g %-5d  %9.2f  %8.1f %8.1f %8.1f  %s\n",
				cand.Mode, cand.GradWorkerFrac, cand.GroupSize, ev.StepSec*1e3,
				float64(mn)/1e6, float64(md)/1e6, float64(mx)/1e6, status)
		}
	}

	sgd := m.TimeToSolutionMin(simulate.RunSpec{GPUs: *gpus, Epochs: *sgdEpochs})
	kf := m.TimeToSolutionMin(simulate.RunSpec{
		GPUs: *gpus, Epochs: *kfacEpochs, KFAC: true, Strategy: strat, InvFreq: f})
	fmt.Printf("time-to-solution: SGD (%d epochs) %.0f min | %s (%d epochs) %.0f min | improvement %+.1f%%\n",
		*sgdEpochs, sgd, strat, *kfacEpochs, kf, 100*(sgd-kf)/sgd)

	eff := m.ScalingEfficiency(simulate.RunSpec{
		GPUs: *gpus, Epochs: *kfacEpochs, KFAC: true, Strategy: strat, InvFreq: f}, 16)
	fmt.Printf("scaling efficiency vs 16 GPUs: %.1f%%\n", eff*100)

	if *workers {
		times := m.WorkerEigTimes(*gpus, strat)
		sorted := append([]float64(nil), times...)
		sort.Float64s(sorted)
		fmt.Printf("\nper-worker eig times (s), sorted: min %.3f  median %.3f  max %.3f\n",
			sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
		busy := 0
		for _, t := range times {
			if t > 0 {
				busy++
			}
		}
		fmt.Printf("busy workers: %d of %d (idle workers are the §IV scaling concern)\n", busy, *gpus)
	}
}

// maxElems returns the largest per-rank element count.
func maxElems(elems []int64) int64 {
	var m int64
	for _, v := range elems {
		if v > m {
			m = v
		}
	}
	return m
}
