// Command kfac-sim queries the calibrated cluster performance model
// directly: time-to-solution, per-stage costs, worker eigendecomposition
// loads and scaling efficiency for any (model, GPUs, strategy, update
// frequency) combination — the interactive counterpart of the fixed
// experiment runners in kfac-bench.
//
// Examples:
//
//	kfac-sim -model resnet50 -gpus 64
//	kfac-sim -model resnet152 -gpus 256 -freq 125 -strategy layerwise
//	kfac-sim -model resnet101 -gpus 64 -workers
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/simulate"
)

// usage prints the flag reference grouped by family, with worked examples.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `kfac-sim — query the calibrated cluster performance model

Scenario:
  -model NAME       resnet32|resnet34|resnet50|resnet101|resnet152 (default resnet50)
  -gpus N           worker count (default 64)
  -strategy NAME    roundrobin|layerwise|greedy factor placement

K-FAC schedule:
  -freq N           kfac-update-freq; 0 selects the paper's scale-proportional value
  -sgd-epochs N     SGD epoch budget for the time-to-solution comparison (default 90)
  -kfac-epochs N    K-FAC epoch budget (default 55)

Output:
  -workers          also print per-worker eigendecomposition load (min/median/max)

Examples:
  kfac-sim -model resnet50 -gpus 64
  kfac-sim -model resnet152 -gpus 256 -freq 125 -strategy layerwise
  kfac-sim -model resnet101 -gpus 64 -workers
`)
}

func main() {
	var (
		model      = flag.String("model", "resnet50", "resnet32|resnet34|resnet50|resnet101|resnet152")
		gpus       = flag.Int("gpus", 64, "worker count")
		freq       = flag.Int("freq", 0, "kfac-update-freq (0 = paper's scale-proportional value)")
		strategy   = flag.String("strategy", "roundrobin", "roundrobin|layerwise|greedy")
		sgdEpochs  = flag.Int("sgd-epochs", 90, "SGD epoch budget")
		kfacEpochs = flag.Int("kfac-epochs", 55, "K-FAC epoch budget")
		workers    = flag.Bool("workers", false, "print per-worker eigendecomposition times")
	)
	flag.Usage = usage
	flag.Parse()

	cat, err := models.CatalogByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var strat kfac.Strategy
	switch *strategy {
	case "layerwise":
		strat = kfac.LayerWise
	case "greedy":
		strat = kfac.SizeGreedy
	case "roundrobin":
		strat = kfac.RoundRobin
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	m := simulate.NewModel(simulate.DefaultV100Cluster(), simulate.ImageNetWorkload(cat))
	f := *freq
	if f == 0 {
		f = simulate.PaperInvFreq(*gpus)
	}

	fmt.Printf("model %s: %.1fM params, %d K-FAC layers, %d iterations/epoch at %d GPUs\n",
		cat.Name, float64(cat.TotalParams())/1e6, len(cat.Layers), m.IterationsPerEpoch(*gpus), *gpus)
	fmt.Printf("per-iteration: fwd+bwd %.1f ms, SGD iter %.1f ms, %s iter %.1f ms (freq %d)\n",
		m.FwdBwdTime()*1e3, m.SGDIterTime(*gpus)*1e3,
		strat, m.KFACIterAvgTime(*gpus, f, strat)*1e3, f)

	fc, fm := m.FactorStage(*gpus)
	ec, em := m.EigStage(*gpus, strat)
	fmt.Printf("stages: factor %.1f ms comp + %.1f ms comm | eig %.1f ms comp + %.1f ms comm\n",
		fc*1e3, fm*1e3, ec*1e3, em*1e3)

	sgd := m.TimeToSolutionMin(simulate.RunSpec{GPUs: *gpus, Epochs: *sgdEpochs})
	kf := m.TimeToSolutionMin(simulate.RunSpec{
		GPUs: *gpus, Epochs: *kfacEpochs, KFAC: true, Strategy: strat, InvFreq: f})
	fmt.Printf("time-to-solution: SGD (%d epochs) %.0f min | %s (%d epochs) %.0f min | improvement %+.1f%%\n",
		*sgdEpochs, sgd, strat, *kfacEpochs, kf, 100*(sgd-kf)/sgd)

	eff := m.ScalingEfficiency(simulate.RunSpec{
		GPUs: *gpus, Epochs: *kfacEpochs, KFAC: true, Strategy: strat, InvFreq: f}, 16)
	fmt.Printf("scaling efficiency vs 16 GPUs: %.1f%%\n", eff*100)

	if *workers {
		times := m.WorkerEigTimes(*gpus, strat)
		sorted := append([]float64(nil), times...)
		sort.Float64s(sorted)
		fmt.Printf("\nper-worker eig times (s), sorted: min %.3f  median %.3f  max %.3f\n",
			sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
		busy := 0
		for _, t := range times {
			if t > 0 {
				busy++
			}
		}
		fmt.Printf("busy workers: %d of %d (idle workers are the §IV scaling concern)\n", busy, *gpus)
	}
}
